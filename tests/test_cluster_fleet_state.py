"""Tests for the FleetState substrate and its scalar-path equivalence.

Mirrors ``tests/test_traces_matrix.py`` on the compute side: every batched
fleet operation (heartbeat refresh, reserve-kill selection, proportional
placement, label filtering) is checked against the legacy per-object path it
replaced, using twin clusters driven through identical random streams.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.node_manager import NodeManager
from repro.cluster.resource_manager import (
    ContainerRequest,
    ResourceManager,
    SchedulerMode,
)
from repro.cluster.resources import Resource
from repro.cluster.server import SimulatedServer
from repro.simulation.random import RandomSource
from repro.traces.datacenter import PrimaryTenant, Server
from repro.traces.utilization import UtilizationPattern, UtilizationTrace


def make_simulated_server(
    server_id: str, values, tenant_id: str | None = None
) -> SimulatedServer:
    tenant_id = tenant_id or f"tenant-{server_id}"
    tenant = PrimaryTenant(
        tenant_id=tenant_id,
        environment=f"env-{tenant_id}",
        machine_function="mf",
        trace=UtilizationTrace(
            np.asarray(values, dtype=float), UtilizationPattern.CONSTANT
        ),
        pattern=UtilizationPattern.CONSTANT,
    )
    server = Server(server_id, tenant_id, cores=12, memory_gb=32.0)
    tenant.servers.append(server)
    return SimulatedServer(server, tenant)


def twin_servers(profiles: dict[str, list[float]], n: int = 2):
    """Two identical server sets: one for the fleet, one for the scalar path."""
    return (
        [make_simulated_server(sid, values) for sid, values in profiles.items()],
        [make_simulated_server(sid, values) for sid, values in profiles.items()],
    )


PROFILES = {
    "idle": [0.1, 0.1, 0.2, 0.1],
    "diurnal": [0.2, 0.7, 0.9, 0.3],
    "busy": [0.6, 0.65, 0.7, 0.6],
    "spiky": [0.05, 0.95, 0.05, 0.95],
}


def build_rm(servers, mode=SchedulerMode.PRIMARY_AWARE, labels=None, seed=1):
    rm = ResourceManager(mode=mode, rng=RandomSource(seed))
    for sim in servers:
        rm.register_node(
            NodeManager(sim, primary_aware=mode is not SchedulerMode.STOCK),
            label=(labels or {}).get(sim.server_id),
        )
    return rm


def scalar_heartbeats(node_managers, time):
    """The legacy per-NodeManager heartbeat loop (pre-FleetState RM path)."""
    availables, killed = {}, []
    for nm in node_managers:
        heartbeat = nm.heartbeat(time)
        availables[nm.server_id] = heartbeat.available
        killed.extend(heartbeat.killed_containers)
    return availables, killed


class TestRefreshEquivalence:
    def test_available_matches_scalar_heartbeats(self):
        fleet_servers, scalar_servers = twin_servers(PROFILES)
        rm = build_rm(fleet_servers)
        scalar_nms = [NodeManager(s, primary_aware=True) for s in scalar_servers]
        for time in [0.0, 120.0, 123.0, 240.0, 480.0, 1200.0]:
            rm.process_heartbeats(time)
            expected, _ = scalar_heartbeats(scalar_nms, time)
            for sid, resource in expected.items():
                got = rm._record(sid).available
                assert got.cores == resource.cores
                assert got.memory_gb == resource.memory_gb

    def test_available_tracks_allocations(self):
        fleet_servers, scalar_servers = twin_servers(PROFILES)
        rm = build_rm(fleet_servers)
        scalar_nms = {
            s.server_id: NodeManager(s, primary_aware=True) for s in scalar_servers
        }
        rm.process_heartbeats(0.0)
        placed = []
        for i in range(6):
            container = rm.schedule(
                ContainerRequest("job", f"t{i}", Resource(1.0, 2.0)), 0.0
            )
            assert container is not None
            placed.append(container)
            scalar_nms[container.server_id].server.launch_container(
                f"t{i}", "job", Resource(1.0, 2.0), 0.0
            )
        rm.process_heartbeats(3.0)
        expected, _ = scalar_heartbeats(scalar_nms.values(), 3.0)
        for sid, resource in expected.items():
            assert rm._record(sid).available.cores == resource.cores
            assert rm._record(sid).available.memory_gb == resource.memory_gb

    def test_stock_mode_ignores_primary(self):
        fleet_servers, _ = twin_servers(PROFILES)
        rm = build_rm(fleet_servers, mode=SchedulerMode.STOCK)
        rm.process_heartbeats(120.0)  # "diurnal" is at 0.7, "spiky" at 0.95
        for sid in PROFILES:
            # Oblivious NodeManagers report full capacity minus allocations.
            assert rm._record(sid).available.cores == 12.0

    def test_last_heartbeat_recorded(self):
        fleet_servers, _ = twin_servers(PROFILES)
        rm = build_rm(fleet_servers)
        rm.process_heartbeats(7.5)
        assert rm._record("idle").last_heartbeat == 7.5


class TestReserveKillEquivalence:
    def test_kills_match_scalar_youngest_first(self):
        fleet_servers, scalar_servers = twin_servers({"burst": [0.1, 0.8]})
        rm = build_rm(fleet_servers)
        scalar_nm = NodeManager(scalar_servers[0], primary_aware=True)
        rm.process_heartbeats(0.0)
        for i in range(6):
            container = rm.schedule(
                ContainerRequest("job", f"t{i}", Resource(1.0, 2.0)), float(i)
            )
            assert container is not None
            scalar_nm.server.launch_container(
                f"t{i}", "job", Resource(1.0, 2.0), float(i)
            )
        # Sample 1 (t=120): primary bursts to 0.8 -> reserve violated.
        killed = rm.process_heartbeats(120.0)
        expected = scalar_nm.heartbeat(120.0).killed_containers
        assert [c.task_id for c in killed] == [c.task_id for c in expected]
        # Youngest-first: the most recently started tasks die first.
        starts = [c.start_time for c in killed]
        assert starts == sorted(starts, reverse=True)
        assert rm.metrics.counter_value("containers_killed") == len(killed)

    def test_no_kills_without_violation(self):
        fleet_servers, _ = twin_servers(PROFILES)
        rm = build_rm(fleet_servers)
        rm.process_heartbeats(0.0)
        assert rm.schedule(ContainerRequest("job", "t", Resource(1.0, 2.0)), 0.0)
        assert rm.process_heartbeats(3.0) == []


class LegacyScalarScheduler:
    """The pre-FleetState candidate filter + draw, kept as the reference."""

    def __init__(self, rm: ResourceManager, rng: RandomSource) -> None:
        self._rm = rm
        self._rng = rng

    def schedule(self, request: ContainerRequest) -> str | None:
        records = [self._rm._servers[sid] for sid in self._rm.fleet.server_ids]
        if self._rm.mode is SchedulerMode.HISTORY and request.node_labels:
            labelled = [r for r in records if r.label in request.node_labels]
            if labelled:
                records = labelled
        candidates = [
            r for r in records if request.allocation.fits_within(r.available)
        ]
        if not candidates:
            return None
        if self._rm.mode is SchedulerMode.STOCK:
            chosen = max(
                candidates,
                key=lambda r: (r.available.cores, r.node_manager.server_id),
            )
        else:
            weights = [max(1e-9, r.available.cores) for r in candidates]
            chosen = candidates[self._rng.weighted_index(weights)]
        return chosen.node_manager.server_id


class TestPlacementEquivalence:
    @pytest.mark.parametrize("mode", [SchedulerMode.PRIMARY_AWARE, SchedulerMode.STOCK])
    def test_draw_sequence_matches_scalar(self, mode):
        fleet_servers, _ = twin_servers(PROFILES)
        reference_servers, _ = twin_servers(PROFILES)
        rm = build_rm(fleet_servers, mode=mode, seed=9)
        reference_rm = build_rm(reference_servers, mode=mode, seed=9)
        reference = LegacyScalarScheduler(reference_rm, reference_rm._rng)
        rm.process_heartbeats(0.0)
        reference_rm.process_heartbeats(0.0)
        for i in range(20):
            request = ContainerRequest("job", f"t{i}", Resource(1.0, 2.0))
            container = rm.schedule(request, 0.0)
            expected_sid = reference.schedule(request)
            if container is None:
                assert expected_sid is None
                break
            # Mirror the placement on the reference cluster's RM view.
            record = reference_rm._servers[expected_sid]
            record.node_manager.server.launch_container(
                f"t{i}", "job", request.allocation, 0.0
            )
            reference_rm.fleet.consume(record.index, request.allocation)
            assert container.server_id == expected_sid

    def test_proportional_draw_prefers_available(self):
        fleet_servers, _ = twin_servers({"idle": [0.0], "full": [0.9]})
        rm = build_rm(fleet_servers, seed=4)
        rm.process_heartbeats(0.0)
        placements = []
        for i in range(6):
            container = rm.schedule(
                ContainerRequest("job", f"t{i}", Resource(1.0, 2.0)), 0.0
            )
            if container is None:
                break
            placements.append(container.server_id)
        assert placements.count("idle") > placements.count("full")


class TestLabelFiltering:
    LABELS = {"idle": "c-idle", "diurnal": "c-diurnal", "busy": "c-idle"}

    def build(self):
        fleet_servers, _ = twin_servers(PROFILES)
        rm = build_rm(fleet_servers, mode=SchedulerMode.HISTORY, labels=self.LABELS)
        rm.process_heartbeats(0.0)
        return rm

    def test_label_mask_intersection(self):
        rm = self.build()
        mask = rm.fleet.label_mask(["c-idle"])
        assert list(mask) == [True, False, True, False]
        both = rm.fleet.label_mask(["c-idle", "c-diurnal"])
        assert list(both) == [True, True, True, False]

    def test_labelled_requests_stay_in_class(self):
        rm = self.build()
        for i in range(4):
            container = rm.schedule(
                ContainerRequest(
                    "job", f"t{i}", Resource(1.0, 2.0), node_labels=["c-idle"]
                ),
                0.0,
            )
            assert container is not None
            assert container.server_id in {"idle", "busy"}

    def test_unknown_label_falls_back_to_default(self):
        rm = self.build()
        container = rm.schedule(
            ContainerRequest("job", "t", Resource(1.0, 2.0), node_labels=["nope"]),
            0.0,
        )
        assert container is not None

    def test_relabel_invalidates_mask(self):
        rm = self.build()
        assert int(rm.fleet.label_mask(["c-idle"]).sum()) == 2
        rm.set_label("busy", "c-diurnal")
        assert int(rm.fleet.label_mask(["c-idle"]).sum()) == 1
        assert rm.class_capacity_cores("c-diurnal") == 24.0


class TestClassStatistics:
    def test_class_utilization_matches_scalar_mean(self):
        fleet_servers, scalar_servers = twin_servers(PROFILES)
        labels = {sid: "c" for sid in PROFILES}
        rm = build_rm(fleet_servers, mode=SchedulerMode.HISTORY, labels=labels)
        expected = sum(
            s.total_cpu_utilization(120.0) for s in scalar_servers
        ) / len(scalar_servers)
        assert rm.current_class_utilization("c", 120.0) == expected
        assert rm.average_total_utilization(120.0) == expected
        assert rm.current_class_utilization("missing", 120.0) == 0.0

    def test_average_primary_utilization_matches_scalar(self):
        fleet_servers, scalar_servers = twin_servers(PROFILES)
        rm = build_rm(fleet_servers)
        expected = sum(
            s.primary_utilization(240.0) for s in scalar_servers
        ) / len(scalar_servers)
        assert rm.average_primary_utilization(240.0) == expected


class TestOverridesAndViews:
    def test_override_routes_through_fallback(self):
        fleet_servers, _ = twin_servers(PROFILES)
        rm = build_rm(fleet_servers)
        server = rm.node_manager("idle").server
        server.set_utilization_override(lambda t: 0.55)
        util = rm.fleet.primary_utilization(0.0)
        assert util[0] == pytest.approx(0.55)
        assert util[1] == pytest.approx(PROFILES["diurnal"][0])
        server.set_utilization_override(None)
        assert rm.fleet.primary_utilization(0.0)[0] == pytest.approx(
            PROFILES["idle"][0]
        )

    def test_registration_after_first_build_grows_arrays(self):
        fleet_servers, _ = twin_servers(PROFILES)
        rm = build_rm(fleet_servers[:2])
        rm.process_heartbeats(0.0)
        assert rm.schedule(ContainerRequest("job", "t0", Resource(1.0, 2.0)), 0.0)
        late = make_simulated_server("late", [0.3, 0.3])
        rm.register_node(NodeManager(late, primary_aware=True))
        rm.process_heartbeats(3.0)
        assert len(rm.fleet) == 3
        assert rm._record("late").available.cores > 0
        # The pre-registration allocation survives the array rebuild.
        total_allocated = float(rm.fleet.allocated_cores.sum())
        assert total_allocated == 1.0

    def test_duplicate_registration_rejected(self):
        fleet_servers, _ = twin_servers(PROFILES)
        rm = build_rm(fleet_servers)
        with pytest.raises(ValueError):
            rm.register_node(NodeManager(make_simulated_server("idle", [0.1])))


class TestInexactAllocationGuard:
    """The kill-path recompute-on-refresh guard for fractional allocations."""

    def test_fractional_allocations_recomputed_on_refresh(self):
        servers = [make_simulated_server(f"s{i}", [0.0, 0.0]) for i in range(3)]
        rm = build_rm(servers)
        fleet = rm.fleet
        rm.process_heartbeats(0.0)
        target = servers[0]
        allocation = Resource(0.1, 0.3)  # off the 1/256 binary grid
        containers = [
            target.launch_container(f"t{i}", "job", allocation, 0.0)
            for i in range(10)
        ]
        assert fleet._inexact_allocations
        for container in containers[:7]:
            target.complete_container(container.container_id, 1.0)
        rm.process_heartbeats(2.0)
        expected = target.allocated()
        index = fleet.index_of("s0")
        # Bit-exact match with the scalar per-server recomputation, which
        # repeated 0.1-core float adds/subtracts cannot guarantee.
        assert float(fleet.allocated_cores[index]) == expected.cores
        assert float(fleet.allocated_memory[index]) == expected.memory_gb
        assert int(fleet.running_containers[index]) == 3

    def test_binary_grid_allocations_stay_incremental(self):
        servers = [make_simulated_server("s0", [0.0, 0.0])]
        rm = build_rm(servers)
        rm.process_heartbeats(0.0)
        servers[0].launch_container("t", "job", Resource(1.0, 2.0), 0.0)
        assert not rm.fleet._inexact_allocations
        rm.process_heartbeats(1.0)
        assert float(rm.fleet.allocated_cores[0]) == 1.0


class TestBatchReclaimEquivalence:
    """The vectorized reserve reclaim vs the scalar per-server kill walk."""

    def test_multiple_violators_match_scalar_order_with_ties(self):
        profiles = {f"v{i}": [0.1, 0.8] for i in range(3)}
        fleet_servers, scalar_servers = twin_servers(profiles)
        rm = build_rm(fleet_servers)
        scalar_nms = [NodeManager(s, primary_aware=True) for s in scalar_servers]
        rm.process_heartbeats(0.0)
        # Launch identical containers on both twins, with start-time ties so
        # the youngest-first sort's stability is exercised.
        start_times = [0.0, 1.0, 1.0, 2.0, 3.0, 3.0]
        for sim, scalar_nm in zip(fleet_servers, scalar_nms):
            for i, start in enumerate(start_times):
                for server in (sim, scalar_nm.server):
                    server.launch_container(
                        f"{sim.server_id}-t{i}", "job", Resource(1.0, 2.0), start
                    )
        assert not rm.fleet._inexact_allocations
        killed = rm.process_heartbeats(120.0)
        expected = []
        for nm in scalar_nms:
            expected.extend(nm.heartbeat(120.0).killed_containers)
        assert killed
        assert [c.task_id for c in killed] == [c.task_id for c in expected]
        # Youngest-first within each violating server.
        for sim in fleet_servers:
            starts = [c.start_time for c in killed if c.server_id == sim.server_id]
            assert starts == sorted(starts, reverse=True)
        assert rm.metrics.counter_value("containers_killed") == len(killed)

    def test_off_grid_allocations_use_scalar_fallback(self, monkeypatch):
        fleet_servers, scalar_servers = twin_servers({"frac": [0.1, 0.5]})
        rm = build_rm(fleet_servers)
        scalar_nm = NodeManager(scalar_servers[0], primary_aware=True)
        rm.process_heartbeats(0.0)
        allocation = Resource(0.7, 1.3)  # off the 1/256 binary grid
        for i in range(8):
            for server in (fleet_servers[0], scalar_nm.server):
                server.launch_container(f"t{i}", "job", allocation, float(i))
        fleet = rm.fleet
        assert fleet._inexact_allocations
        calls = []
        original = fleet._batch_reclaim

        def recording(*args, **kwargs):
            calls.append(args)
            return original(*args, **kwargs)

        monkeypatch.setattr(fleet, "_batch_reclaim", recording)
        killed = rm.process_heartbeats(120.0)
        expected = scalar_nm.heartbeat(120.0).killed_containers
        assert killed
        assert [c.task_id for c in killed] == [c.task_id for c in expected]
        # Off-grid fleets must take the per-server scalar walk, never the
        # prefix-sum fast path.
        assert not calls
