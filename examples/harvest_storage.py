#!/usr/bin/env python3
"""Storage harvesting demo: durability and availability of HDFS-H vs stock.

Runs two small simulations on the synthetic DC-9:

* a durability study replaying months of per-server reimages and
  environment-wide reimage bursts, counting lost blocks under three- and
  four-way replication for HDFS-Stock and HDFS-H (Figure 15);
* an availability study scaling the primary tenants' utilization and
  measuring the fraction of block accesses that fail because every replica
  sits on a busy server (Figure 16).

Run with::

    python examples/harvest_storage.py [--blocks 2000] [--days 45]
"""

from __future__ import annotations

import argparse

from repro.experiments.availability import run_availability_experiment
from repro.experiments.config import ExperimentScale
from repro.experiments.durability import run_durability_experiment
from repro.experiments.report import format_float, format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--blocks", type=int, default=2000,
                        help="number of blocks to simulate (default 2000)")
    parser.add_argument("--days", type=float, default=45.0,
                        help="durability horizon in days (default 45)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    scale = ExperimentScale(
        num_servers=30,
        durability_days=args.days,
        simulation_days=2.0,
        num_blocks=args.blocks,
        datacenter_scale=0.15,
    )

    print(f"Durability: {args.blocks} blocks, {args.days:.0f} days of reimages ...")
    durability = run_durability_experiment("DC-9", scale=scale, seed=args.seed)
    rows = []
    for replication in (3, 4):
        for variant in ("HDFS-Stock", "HDFS-H"):
            r = durability.result(variant, replication)
            rows.append([variant, replication, r.blocks_created, r.blocks_lost,
                         f"{100 * r.lost_fraction:.4f}%"])
    print(format_table(
        ["system", "replication", "blocks", "lost", "lost fraction"],
        rows,
        title="\nDurability (Figure 15 shape)",
    ))
    print(f"Loss reduction factor of HDFS-H at R=3: "
          f"{format_float(durability.loss_reduction_factor(3))}")

    print("\nAvailability: sweeping utilization levels ...")
    availability = run_availability_experiment(
        "DC-9",
        utilization_levels=(0.3, 0.5, 0.66, 0.75),
        scale=scale,
        seed=args.seed,
        accesses_per_point=1000,
    )
    rows = []
    for util in (0.3, 0.5, 0.66, 0.75):
        rows.append([
            f"{util:.2f}",
            f"{100 * availability.failed_fraction('HDFS-Stock', 3, util):.2f}%",
            f"{100 * availability.failed_fraction('HDFS-H', 3, util):.2f}%",
            f"{100 * availability.failed_fraction('HDFS-Stock', 4, util):.2f}%",
            f"{100 * availability.failed_fraction('HDFS-H', 4, util):.2f}%",
        ])
    print(format_table(
        ["avg util", "Stock R3", "HDFS-H R3", "Stock R4", "HDFS-H R4"],
        rows,
        title="\nFailed accesses (Figure 16 shape)",
    ))
    print(
        "\nShape checks: HDFS-H should lose orders of magnitude fewer blocks at "
        "R=3 and none at R=4, and should show no failed accesses until much "
        "higher utilization than HDFS-Stock."
    )


if __name__ == "__main__":
    main()
