"""Figure 13: DC-9 job run-time improvements across the utilization spectrum.

The datacenter-scale simulation scales DC-9's utilization up and down (linear
and root scalings), runs the same workload under YARN-PT and YARN-H/Tez-H,
and compares average job execution times.  YARN-H improves job times across
most of the spectrum, the advantage is larger under linear scaling (which
preserves more temporal variation), and YARN-PT kills more tasks.
"""

from __future__ import annotations


from repro.experiments.report import format_table
from repro.traces.scaling import ScalingMethod

from conftest import run_once


def test_fig13_dc9_runtime_vs_util(benchmark, dc9_sweep):
    sweep = run_once(benchmark, lambda: dc9_sweep)

    rows = []
    for point in sorted(
        sweep.points, key=lambda p: (p.scaling.value, p.target_utilization)
    ):
        rows.append([
            point.scaling.value,
            f"{point.target_utilization:.2f}",
            f"{point.yarn_pt_seconds:.0f}",
            f"{point.yarn_h_seconds:.0f}",
            f"{100 * point.improvement:.0f}%",
            point.yarn_pt_tasks_killed,
            point.yarn_h_tasks_killed,
        ])
    print()
    print(format_table(
        ["scaling", "target util", "YARN-PT (s)", "YARN-H (s)", "improvement",
         "kills PT", "kills H"],
        rows,
        title="Figure 13: DC-9 average job execution time vs utilization",
    ))

    linear = sweep.points_for(ScalingMethod.LINEAR)
    root = sweep.points_for(ScalingMethod.ROOT)
    assert linear and root

    # YARN-H improves (or at worst matches) YARN-PT on average over the sweep.
    assert sweep.average_improvement(ScalingMethod.LINEAR) >= 0.0
    assert sweep.max_improvement(ScalingMethod.LINEAR) > 0.05

    # At the higher-utilization end of the sweep, where kills dominate, the
    # improvement is substantial and YARN-H kills fewer tasks than YARN-PT.
    busiest = max(linear, key=lambda p: p.target_utilization)
    assert busiest.improvement > 0.1
    assert busiest.yarn_h_tasks_killed < busiest.yarn_pt_tasks_killed

    # Queueing grows with utilization for both systems.
    assert busiest.yarn_pt_seconds > min(p.yarn_pt_seconds for p in linear)
