"""Algorithm 2: diversity-maximizing replica placement.

Given the 3x3 grid clustering of primary tenants (reimage frequency x peak
utilization), the replica placer chooses one server for each replica of a new
block:

1. the first replica goes to the server creating the block (locality), and
   that server's grid cell counts as "used";
2. every subsequent replica picks a random cell whose row *and* column have
   not been used yet in the current round, then a random tenant in that cell
   whose environment (and, optionally, rack) has not already received a
   replica, then a random server of that tenant;
3. after every three replicas the row/column history is forgotten, so
   replication levels above three keep spreading across the grid.

The placer also supports a *soft-constraint* mode that mirrors the initial
production configuration (space over diversity): when the hard constraints
cannot be met, they are relaxed in order (rack, environment, row/column)
instead of failing the block creation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.grid import GridCell, GridClustering, TenantPlacementStats
from repro.simulation.random import RandomSource


@dataclass(frozen=True)
class PlacementConstraints:
    """Which diversity constraints the placer enforces.

    Attributes:
        distinct_rows_and_columns: never reuse a grid row or column within a
            round of three replicas (the core of Algorithm 2).
        distinct_environments: never place two replicas of a block in the
            same management environment.
        distinct_racks: never place two replicas of a block in the same
            physical rack (production extension, Section 7).
        hard: when True a block creation fails if the constraints cannot be
            met; when False the constraints are relaxed in order (rack, then
            environment, then rows/columns) — the "space over diversity"
            configuration.
    """

    distinct_rows_and_columns: bool = True
    distinct_environments: bool = True
    distinct_racks: bool = False
    hard: bool = True


@dataclass
class PlacementDecision:
    """The outcome of placing one block's replicas.

    Attributes:
        server_ids: chosen servers, one per replica, in placement order.
        tenant_ids: owning tenant of each chosen server.
        cells: grid cell of each chosen server.
        relaxed_constraints: names of constraints that had to be relaxed
            (only possible in soft mode).
        complete: True when the requested replication level was reached.
    """

    server_ids: List[str] = field(default_factory=list)
    tenant_ids: List[str] = field(default_factory=list)
    cells: List[Tuple[int, int]] = field(default_factory=list)
    relaxed_constraints: List[str] = field(default_factory=list)
    complete: bool = False

    @property
    def replication(self) -> int:
        """Number of replicas actually placed."""
        return len(self.server_ids)


class ReplicaPlacer:
    """Implements Algorithm 2 over a grid clustering."""

    def __init__(
        self,
        grid: GridClustering,
        rng: Optional[RandomSource] = None,
        constraints: PlacementConstraints = PlacementConstraints(),
        space_used_gb: Optional[Dict[str, float]] = None,
        block_size_gb: float = 0.25,
    ) -> None:
        self._grid = grid
        self._rng = rng or RandomSource(0)
        self._constraints = constraints
        #: Space already consumed on each tenant, so the placer can skip
        #: tenants whose harvestable space is exhausted.
        self._space_used_gb: Dict[str, float] = dict(space_used_gb or {})
        if block_size_gb <= 0:
            raise ValueError("block_size_gb must be positive")
        self._block_size_gb = block_size_gb
        self._index_grid()

    def _index_grid(self) -> None:
        """Precompute the per-grid lookups the per-block hot path uses."""
        self._available_gb: Dict[str, float] = {
            tenant_id: stats.available_space_gb
            for tenant_id, stats in self._grid.stats_by_tenant.items()
        }
        self._stats_of_server: Dict[str, TenantPlacementStats] = {
            server_id: stats
            for stats in self._grid.stats_by_tenant.values()
            for server_id in stats.server_ids
        }
        self._non_empty_cells: List[GridCell] = self._grid.non_empty_cells()
        #: Per-cell tenant stats with the static "has servers" filter baked
        #: in, so the per-block candidate scan skips the tenant-id lookups.
        self._cell_stats: Dict[Tuple[int, int], List[TenantPlacementStats]] = {
            (cell.row, cell.column): [
                stats
                for tenant_id in cell.tenant_ids
                if (stats := self._grid.stats_by_tenant[tenant_id]).server_ids
            ]
            for cell in self._non_empty_cells
        }

    # -- bookkeeping -------------------------------------------------------

    @property
    def grid(self) -> GridClustering:
        """The grid clustering the placer operates on."""
        return self._grid

    def update_grid(self, grid: GridClustering) -> None:
        """Swap in a re-clustered grid (the clustering runs periodically)."""
        self._grid = grid
        self._index_grid()

    def space_used_gb(self, tenant_id: str) -> float:
        """Space already consumed on a tenant by placed replicas."""
        return self._space_used_gb.get(tenant_id, 0.0)

    def remaining_space_gb(self, tenant_id: str) -> float:
        """Harvestable space a tenant still offers."""
        stats = self._grid.stats_by_tenant.get(tenant_id)
        if stats is None:
            return 0.0
        return max(0.0, stats.available_space_gb - self.space_used_gb(tenant_id))

    def release_space(self, tenant_id: str, gigabytes: float) -> None:
        """Return space (e.g. after a block is deleted or a replica lost)."""
        if gigabytes < 0:
            raise ValueError("released space must be non-negative")
        current = self._space_used_gb.get(tenant_id, 0.0)
        self._space_used_gb[tenant_id] = max(0.0, current - gigabytes)

    # -- candidate filtering -------------------------------------------------

    def _tenant_has_space(self, tenant_id: str) -> bool:
        # Same predicate as ``remaining_space_gb(...) >= block_size`` (the
        # max(0, .) clamp cannot change a >=-positive comparison), without
        # re-resolving the stats object per candidate tenant.
        return (
            self._available_gb.get(tenant_id, 0.0)
            - self._space_used_gb.get(tenant_id, 0.0)
            >= self._block_size_gb
        )

    def _candidate_tenants(
        self,
        cell: GridCell,
        used_environments: Set[str],
        enforce_environment: bool,
    ) -> List[TenantPlacementStats]:
        candidates: List[TenantPlacementStats] = []
        for stats in self._cell_stats.get((cell.row, cell.column), ()):
            if not self._tenant_has_space(stats.tenant_id):
                continue
            if enforce_environment and stats.environment in used_environments:
                continue
            candidates.append(stats)
        return candidates

    def _candidate_servers(
        self,
        stats: TenantPlacementStats,
        used_servers: Set[str],
        used_racks: Set[str],
        enforce_rack: bool,
    ) -> List[str]:
        servers: List[str] = []
        for server_id in stats.server_ids:
            if server_id in used_servers:
                continue
            rack = stats.racks_by_server.get(server_id)
            if enforce_rack and rack is not None and rack in used_racks:
                continue
            servers.append(server_id)
        return servers

    # -- placement -----------------------------------------------------------

    def place_block(
        self,
        replication: int,
        creating_server_id: Optional[str] = None,
        excluded_servers: Optional[Set[str]] = None,
    ) -> PlacementDecision:
        """Choose a server for each of a new block's ``replication`` replicas.

        ``excluded_servers`` are servers that cannot receive a replica right
        now (e.g. the NameNode marked them busy); they are skipped entirely,
        including for the locality replica.
        """
        if replication <= 0:
            raise ValueError(f"replication must be positive (got {replication})")

        decision = PlacementDecision()
        used_rows: Set[int] = set()
        used_columns: Set[int] = set()
        used_environments: Set[str] = set()
        used_racks: Set[str] = set()
        used_servers: Set[str] = set(excluded_servers or ())

        creating_tenant = self._tenant_of_server(creating_server_id)
        if (
            creating_server_id is not None
            and creating_tenant is not None
            and creating_server_id not in used_servers
            and self._tenant_has_space(creating_tenant.tenant_id)
        ):
            # Replica 1: the creating server itself, for locality.
            self._record_replica(
                decision,
                creating_server_id,
                creating_tenant,
                used_rows,
                used_columns,
                used_environments,
                used_racks,
                used_servers,
            )

        while decision.replication < replication:
            placed = self._place_one(
                decision,
                used_rows,
                used_columns,
                used_environments,
                used_racks,
                used_servers,
            )
            if not placed:
                decision.complete = False
                return decision
            # Line 15-17 of Algorithm 2: after every three replicas, forget
            # the rows and columns selected so far.
            if decision.replication % 3 == 0:
                used_rows.clear()
                used_columns.clear()

        decision.complete = True
        return decision

    def _place_one(
        self,
        decision: PlacementDecision,
        used_rows: Set[int],
        used_columns: Set[int],
        used_environments: Set[str],
        used_racks: Set[str],
        used_servers: Set[str],
    ) -> bool:
        """Place the next replica; returns False when no placement exists."""
        relaxation_plan: List[Tuple[bool, bool, bool, Optional[str]]] = [
            (
                self._constraints.distinct_rows_and_columns,
                self._constraints.distinct_environments,
                self._constraints.distinct_racks,
                None,
            )
        ]
        if not self._constraints.hard:
            if self._constraints.distinct_racks:
                relaxation_plan.append(
                    (
                        self._constraints.distinct_rows_and_columns,
                        self._constraints.distinct_environments,
                        False,
                        "rack",
                    )
                )
            if self._constraints.distinct_environments:
                relaxation_plan.append(
                    (
                        self._constraints.distinct_rows_and_columns,
                        False,
                        False,
                        "environment",
                    )
                )
            if self._constraints.distinct_rows_and_columns:
                relaxation_plan.append((False, False, False, "rows_and_columns"))

        for enforce_grid, enforce_env, enforce_rack, relaxed in relaxation_plan:
            chosen = self._try_place(
                enforce_grid,
                enforce_env,
                enforce_rack,
                used_rows,
                used_columns,
                used_environments,
                used_racks,
                used_servers,
            )
            if chosen is not None:
                server_id, stats = chosen
                if relaxed is not None and relaxed not in decision.relaxed_constraints:
                    decision.relaxed_constraints.append(relaxed)
                self._record_replica(
                    decision,
                    server_id,
                    stats,
                    used_rows,
                    used_columns,
                    used_environments,
                    used_racks,
                    used_servers,
                )
                return True
        return False

    def _try_place(
        self,
        enforce_grid: bool,
        enforce_env: bool,
        enforce_rack: bool,
        used_rows: Set[int],
        used_columns: Set[int],
        used_environments: Set[str],
        used_racks: Set[str],
        used_servers: Set[str],
    ) -> Optional[Tuple[str, TenantPlacementStats]]:
        """One attempt at placing a replica under the given constraint set."""
        cells = self._non_empty_cells
        if enforce_grid:
            cells = [
                cell
                for cell in cells
                if cell.row not in used_rows and cell.column not in used_columns
            ]
        # Shuffle cells so the random choice below explores all of them
        # (``shuffle`` copies, so the cached cell list stays untouched).
        cells = self._rng.shuffle(cells)
        for cell in cells:
            tenants = self._candidate_tenants(cell, used_environments, enforce_env)
            if not tenants:
                continue
            tenants = self._rng.shuffle(tenants)
            for stats in tenants:
                servers = self._candidate_servers(
                    stats, used_servers, used_racks, enforce_rack
                )
                if servers:
                    return self._rng.choice(servers), stats
        return None

    def _record_replica(
        self,
        decision: PlacementDecision,
        server_id: str,
        stats: TenantPlacementStats,
        used_rows: Set[int],
        used_columns: Set[int],
        used_environments: Set[str],
        used_racks: Set[str],
        used_servers: Set[str],
    ) -> None:
        cell = self._grid.cell_of_tenant.get(stats.tenant_id)
        decision.server_ids.append(server_id)
        decision.tenant_ids.append(stats.tenant_id)
        decision.cells.append(cell if cell is not None else (-1, -1))
        if cell is not None:
            used_rows.add(cell[0])
            used_columns.add(cell[1])
        used_environments.add(stats.environment)
        rack = stats.racks_by_server.get(server_id)
        if rack is not None:
            used_racks.add(rack)
        used_servers.add(server_id)
        self._space_used_gb[stats.tenant_id] = (
            self._space_used_gb.get(stats.tenant_id, 0.0) + self._block_size_gb
        )

    def _tenant_of_server(
        self, server_id: Optional[str]
    ) -> Optional[TenantPlacementStats]:
        if server_id is None:
            return None
        return self._stats_of_server.get(server_id)
