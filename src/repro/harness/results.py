"""Result dataclasses produced by the scenario runners.

These used to live in the per-experiment driver modules; they moved here when
the drivers were unified on :class:`repro.harness.ExperimentHarness` so the
runners and the (thin) legacy wrappers can share them without import cycles.
The driver modules re-export them under their historical names.

Every top-level result implements the uniform presentation protocol the
``repro.api`` envelope relies on:

* ``headline()`` — the figure's fingerprint-relevant numbers as JSON-safe
  data (what ``benchmarks/emit_bench.py`` records and
  ``benchmarks/diff_bench.py`` gates on);
* ``render()`` — the figure's table as text (what the CLI prints).

Both used to be ~75-line ``isinstance`` switches in ``cli.py`` and
``emit_bench.py``; as methods, a new scenario kind brings its own
presentation along and no tool needs a new case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.traces.scaling import ScalingMethod


# ---------------------------------------------------------------------------
# Figure 15: durability
# ---------------------------------------------------------------------------


@dataclass
class VariantDurabilityResult:
    """Durability outcome for one (system, replication level) pair."""

    variant: str
    replication: int
    blocks_created: int
    blocks_lost: int
    reimage_events: int

    @property
    def lost_fraction(self) -> float:
        """Fraction of blocks lost during the simulated period."""
        if self.blocks_created == 0:
            return 0.0
        return self.blocks_lost / self.blocks_created


@dataclass
class DurabilityResult:
    """Figure 15: lost blocks per datacenter, system, and replication level."""

    datacenter: str
    results: Dict[Tuple[str, int], VariantDurabilityResult] = field(
        default_factory=dict
    )

    def result(self, variant: str, replication: int) -> VariantDurabilityResult:
        """Result for one system at one replication level."""
        return self.results[(variant, replication)]

    def loss_reduction_factor(self, replication: int) -> float:
        """How many times fewer blocks HDFS-H loses than HDFS-Stock.

        Infinite (represented as ``float('inf')``) when HDFS-H loses nothing
        while HDFS-Stock loses some.
        """
        stock = self.result("HDFS-Stock", replication).blocks_lost
        history = self.result("HDFS-H", replication).blocks_lost
        if history == 0:
            return float("inf") if stock > 0 else 1.0
        return stock / history

    def headline(self) -> Dict[str, Dict[str, int]]:
        """Fingerprint-relevant numbers: created/lost per (variant, R)."""
        return {
            f"{variant}-r{replication}": {
                "blocks_created": r.blocks_created,
                "blocks_lost": r.blocks_lost,
            }
            for (variant, replication), r in sorted(self.results.items())
        }

    def render(self) -> str:
        """Figure 15's table."""
        from repro.experiments.report import format_table

        rows = [
            [variant, replication, r.blocks_created, r.blocks_lost,
             f"{100 * r.lost_fraction:.4f}%"]
            for (variant, replication), r in sorted(self.results.items())
        ]
        return format_table(
            ["system", "replication", "blocks", "lost", "lost fraction"],
            rows,
            title=f"Durability ({self.datacenter})",
        )


# ---------------------------------------------------------------------------
# Figure 16: availability
# ---------------------------------------------------------------------------


@dataclass
class AvailabilityPoint:
    """Failed-access fraction for one (system, replication, utilization)."""

    variant: str
    replication: int
    target_utilization: float
    accesses: int
    failed_accesses: int

    @property
    def failed_fraction(self) -> float:
        """Fraction of accesses that could not be served."""
        if self.accesses == 0:
            return 0.0
        return self.failed_accesses / self.accesses


@dataclass
class AvailabilityResult:
    """Figure 16: failed accesses vs utilization per system and replication."""

    datacenter: str
    scaling: ScalingMethod
    points: List[AvailabilityPoint] = field(default_factory=list)

    def series(self, variant: str, replication: int) -> List[AvailabilityPoint]:
        """Points for one system/replication ordered by utilization."""
        return sorted(
            (
                p
                for p in self.points
                if p.variant == variant and p.replication == replication
            ),
            key=lambda p: p.target_utilization,
        )

    def failed_fraction(
        self, variant: str, replication: int, target_utilization: float
    ) -> float:
        """Failed fraction at one utilization level (nearest point)."""
        series = self.series(variant, replication)
        if not series:
            return 0.0
        closest = min(
            series, key=lambda p: abs(p.target_utilization - target_utilization)
        )
        return closest.failed_fraction

    def headline(self) -> Dict[str, Dict[str, int]]:
        """Fingerprint-relevant numbers: accesses/failures per grid point."""
        return {
            f"{p.variant}-r{p.replication}-u{p.target_utilization}": {
                "accesses": p.accesses,
                "failed_accesses": p.failed_accesses,
            }
            for p in self.points
        }

    def render(self) -> str:
        """Figure 16's table."""
        from repro.experiments.report import format_table

        variants = sorted({(p.variant, p.replication) for p in self.points})
        levels = sorted({p.target_utilization for p in self.points})
        rows = [
            [f"{util:.2f}"]
            + [
                f"{100 * self.failed_fraction(v, r, util):.2f}%"
                for v, r in variants
            ]
            for util in levels
        ]
        return format_table(
            ["avg util"] + [f"{v} R{r}" for v, r in variants],
            rows,
            title=f"Availability ({self.datacenter}, {self.scaling.value})",
        )


# ---------------------------------------------------------------------------
# Figures 13 and 14: datacenter-scale scheduling
# ---------------------------------------------------------------------------


@dataclass
class SchedulingSweepPoint:
    """One (utilization level, scaling method) point of the Figure 13 sweep."""

    target_utilization: float
    scaling: ScalingMethod
    yarn_pt_seconds: float
    yarn_h_seconds: float
    yarn_pt_tasks_killed: int
    yarn_h_tasks_killed: int
    jobs_completed_pt: int
    jobs_completed_h: int
    #: Per-variant hot-path cache counters, excluded from the fingerprinted
    #: JSON (see ``result_to_jsonable``).
    scheduler_counters: Dict[str, Dict[str, int]] = field(
        default_factory=dict, metadata={"jsonable": False}
    )

    @property
    def improvement(self) -> float:
        """Relative run-time reduction of YARN-H over YARN-PT (0..1)."""
        if self.yarn_pt_seconds <= 0:
            return 0.0
        return max(0.0, 1.0 - self.yarn_h_seconds / self.yarn_pt_seconds)


@dataclass
class SchedulingSweepResult:
    """Figure 13: sweep points for one datacenter under both scalings."""

    datacenter: str
    points: List[SchedulingSweepPoint] = field(default_factory=list)

    def points_for(self, scaling: ScalingMethod) -> List[SchedulingSweepPoint]:
        """The sweep restricted to one scaling method, ordered by utilization."""
        return sorted(
            (p for p in self.points if p.scaling is scaling),
            key=lambda p: p.target_utilization,
        )

    def improvements(self, scaling: Optional[ScalingMethod] = None) -> List[float]:
        """Improvement fractions, optionally restricted to one scaling."""
        points = self.points if scaling is None else self.points_for(scaling)
        return [p.improvement for p in points]

    def average_improvement(self, scaling: Optional[ScalingMethod] = None) -> float:
        """Mean improvement over the sweep."""
        improvements = self.improvements(scaling)
        return float(np.mean(improvements)) if improvements else 0.0

    def max_improvement(self, scaling: Optional[ScalingMethod] = None) -> float:
        """Largest improvement seen in the sweep."""
        improvements = self.improvements(scaling)
        return float(np.max(improvements)) if improvements else 0.0

    def min_improvement(self, scaling: Optional[ScalingMethod] = None) -> float:
        """Smallest improvement seen in the sweep."""
        improvements = self.improvements(scaling)
        return float(np.min(improvements)) if improvements else 0.0

    def headline(self) -> Dict[str, object]:
        """Fingerprint-relevant numbers: every sweep point plus the mean."""
        return {
            "points": [
                {
                    "scaling": p.scaling.value,
                    "target_utilization": p.target_utilization,
                    "yarn_pt_seconds": p.yarn_pt_seconds,
                    "yarn_h_seconds": p.yarn_h_seconds,
                    "improvement": p.improvement,
                    "yarn_pt_tasks_killed": p.yarn_pt_tasks_killed,
                    "yarn_h_tasks_killed": p.yarn_h_tasks_killed,
                }
                for p in self.points
            ],
            "average_improvement_linear": self.average_improvement(
                ScalingMethod.LINEAR
            ),
        }

    def render(self) -> str:
        """Figure 13's table."""
        from repro.experiments.report import format_table

        rows = [
            [p.scaling.value, f"{p.target_utilization:.2f}",
             f"{p.yarn_pt_seconds:.0f}", f"{p.yarn_h_seconds:.0f}",
             f"{100 * p.improvement:.0f}%"]
            for p in self.points
        ]
        return format_table(
            ["scaling", "target util", "YARN-PT (s)", "YARN-H (s)", "improvement"],
            rows,
            title=f"{self.datacenter} utilization sweep",
        )


@dataclass
class FleetImprovementResult:
    """Figure 14: per-datacenter improvement summary."""

    sweeps: Dict[str, SchedulingSweepResult] = field(default_factory=dict)

    def summary(
        self, scaling: Optional[ScalingMethod] = None
    ) -> Dict[str, Dict[str, float]]:
        """min / avg / max improvement per datacenter."""
        table: Dict[str, Dict[str, float]] = {}
        for name, sweep in self.sweeps.items():
            table[name] = {
                "min": sweep.min_improvement(scaling),
                "avg": sweep.average_improvement(scaling),
                "max": sweep.max_improvement(scaling),
            }
        return table

    def headline(self) -> Dict[str, Dict[str, float]]:
        """Fingerprint-relevant numbers: the per-datacenter summary."""
        return {name: dict(stats) for name, stats in sorted(self.summary().items())}

    def render(self) -> str:
        """Figure 14's table."""
        from repro.experiments.report import format_table

        rows = [
            [name, f"{100 * s['min']:.0f}%", f"{100 * s['avg']:.0f}%",
             f"{100 * s['max']:.0f}%"]
            for name, s in sorted(self.summary().items())
        ]
        return format_table(
            ["DC", "min", "avg", "max"], rows, title="Fleet improvements"
        )


# ---------------------------------------------------------------------------
# Figures 10-12: the testbed
# ---------------------------------------------------------------------------


@dataclass
class VariantSchedulingResult:
    """Per-variant outcome of the scheduling testbed."""

    variant: str
    average_p99_ms: float
    max_p99_ms: float
    average_job_seconds: float
    jobs_completed: int
    tasks_killed: int
    average_cpu_utilization: float
    latency_samples: List[float] = field(default_factory=list)
    job_execution_seconds: List[float] = field(default_factory=list)
    #: Hot-path cache counters (waves_coalesced / frontier_cache_hits),
    #: excluded from the fingerprinted JSON (see ``result_to_jsonable``).
    scheduler_counters: Dict[str, int] = field(
        default_factory=dict, metadata={"jsonable": False}
    )


@dataclass
class SchedulingTestbedResult:
    """Figure 10/11 results: one entry per system variant plus the baseline."""

    no_harvesting_p99_ms: float
    variants: Dict[str, VariantSchedulingResult]

    def variant(self, name: str) -> VariantSchedulingResult:
        """Result for one variant by name (e.g. ``"YARN-H"``)."""
        return self.variants[name]

    def headline(self) -> Dict[str, object]:
        """Fingerprint-relevant numbers: baseline plus per-variant summary."""
        return {
            "no_harvesting_p99_ms": self.no_harvesting_p99_ms,
            "variants": {
                name: {
                    "average_p99_ms": v.average_p99_ms,
                    "max_p99_ms": v.max_p99_ms,
                    "average_job_seconds": v.average_job_seconds,
                    "jobs_completed": v.jobs_completed,
                    "tasks_killed": v.tasks_killed,
                    "average_cpu_utilization": v.average_cpu_utilization,
                }
                for name, v in self.variants.items()
            },
        }

    def render(self) -> str:
        """Figure 10/11's table."""
        from repro.experiments.report import format_table

        rows = [["No-Harvesting", f"{self.no_harvesting_p99_ms:.0f}", "-", "-", "-"]]
        for name, v in self.variants.items():
            rows.append([
                name, f"{v.average_p99_ms:.0f}", f"{v.average_job_seconds:.0f}",
                v.tasks_killed, f"{100 * v.average_cpu_utilization:.0f}%",
            ])
        return format_table(
            ["variant", "avg p99 (ms)", "avg job (s)", "kills", "cpu util"],
            rows,
            title="Scheduling testbed",
        )


@dataclass
class VariantStorageResult:
    """Per-variant outcome of the storage testbed."""

    variant: str
    average_p99_ms: float
    max_p99_ms: float
    failed_accesses: int
    served_accesses: int
    blocks_created: int


@dataclass
class StorageTestbedResult:
    """Figure 12 results keyed by HDFS variant."""

    no_harvesting_p99_ms: float
    variants: Dict[str, VariantStorageResult]

    def variant(self, name: str) -> VariantStorageResult:
        """Result for one variant by name (e.g. ``"HDFS-H"``)."""
        return self.variants[name]

    def headline(self) -> Dict[str, object]:
        """Fingerprint-relevant numbers: baseline plus per-variant summary."""
        return {
            "no_harvesting_p99_ms": self.no_harvesting_p99_ms,
            "variants": {
                name: {
                    "average_p99_ms": v.average_p99_ms,
                    "failed_accesses": v.failed_accesses,
                    "served_accesses": v.served_accesses,
                }
                for name, v in self.variants.items()
            },
        }

    def render(self) -> str:
        """Figure 12's table."""
        from repro.experiments.report import format_table

        rows = [["No-Harvesting", f"{self.no_harvesting_p99_ms:.0f}", "-", "-"]]
        for name, v in self.variants.items():
            rows.append([
                name, f"{v.average_p99_ms:.0f}", v.failed_accesses, v.served_accesses,
            ])
        return format_table(
            ["variant", "avg p99 (ms)", "failed accesses", "served accesses"],
            rows,
            title="Storage testbed",
        )


# ---------------------------------------------------------------------------
# Continuous mode: windowed epoch metrics
# ---------------------------------------------------------------------------


@dataclass
class EpochMetrics:
    """One epoch window of a continuous run.

    All counts are *deltas within the window* except ``queue_depth``, which
    is the backlog (jobs submitted but not yet finished) at the window's
    closing boundary.  ``p99_primary_ms`` is the 99th percentile of the
    per-minute fleet-mean primary latency samples whose minute starts inside
    the window (0.0 when the window holds no complete minute).
    """

    index: int
    start_seconds: float
    end_seconds: float
    jobs_submitted: int
    jobs_completed: int
    tasks_completed: int
    tasks_killed: int
    queue_depth: int
    p99_primary_ms: float

    @property
    def duration_hours(self) -> float:
        """Window length in hours (rates below are per hour)."""
        return (self.end_seconds - self.start_seconds) / 3600.0

    @property
    def harvest_throughput_tasks_per_hour(self) -> float:
        """Harvested work rate: batch tasks completed per hour."""
        return self.tasks_completed / self.duration_hours

    @property
    def kill_rate(self) -> float:
        """Fraction of this window's finished task attempts that were killed."""
        attempts = self.tasks_completed + self.tasks_killed
        if attempts == 0:
            return 0.0
        return self.tasks_killed / attempts


def epoch_record(variant: str, epoch: "EpochMetrics") -> Dict[str, object]:
    """One JSON-safe record for a finalized epoch.

    The schema of the ``--emit-epochs`` JSONL stream: the epoch's headline
    fields plus its window bounds and owning variant, so a line is
    self-describing without the surrounding payload.
    """
    return {
        "variant": variant,
        "index": epoch.index,
        "start_seconds": epoch.start_seconds,
        "end_seconds": epoch.end_seconds,
        "jobs_submitted": epoch.jobs_submitted,
        "jobs_completed": epoch.jobs_completed,
        "tasks_completed": epoch.tasks_completed,
        "tasks_killed": epoch.tasks_killed,
        "queue_depth": epoch.queue_depth,
        "p99_primary_ms": epoch.p99_primary_ms,
    }


@dataclass
class VariantContinuousResult:
    """The epoch stream one scheduler variant produced."""

    variant: str
    epochs: List["EpochMetrics"]
    #: Streaming-fold observability (excluded from the JSON payload and
    #: therefore from the fingerprint): peak raw heartbeat rows/bytes the
    #: aggregator held at once, and how many fold passes ran.
    peak_tail_rows: int = field(default=0, metadata={"jsonable": False})
    peak_tail_bytes: int = field(default=0, metadata={"jsonable": False})
    series_folds: int = field(default=0, metadata={"jsonable": False})

    @property
    def jobs_completed(self) -> int:
        """Jobs finished over the whole horizon."""
        return sum(e.jobs_completed for e in self.epochs)

    @property
    def tasks_killed(self) -> int:
        """Task attempts killed over the whole horizon."""
        return sum(e.tasks_killed for e in self.epochs)

    @property
    def final_queue_depth(self) -> int:
        """Backlog when the horizon closed."""
        return self.epochs[-1].queue_depth if self.epochs else 0


@dataclass
class ContinuousResult:
    """Continuous-mode results: one windowed epoch stream per variant.

    Unlike the figure results, the payload here *is* the time series — the
    fingerprint covers every epoch of every variant, so a single diverging
    window anywhere in the horizon changes the run's fingerprint.
    """

    traffic: str
    epoch_seconds: float
    num_epochs: int
    variants: Dict[str, VariantContinuousResult] = field(default_factory=dict)

    def variant(self, name: str) -> VariantContinuousResult:
        """The epoch stream for one variant by name (e.g. ``"YARN-H"``)."""
        return self.variants[name]

    def headline(self) -> Dict[str, object]:
        """Fingerprint-relevant data: the full per-variant epoch stream."""
        return {
            "traffic": self.traffic,
            "epoch_seconds": self.epoch_seconds,
            "num_epochs": self.num_epochs,
            "variants": {
                name: {
                    "epochs": [
                        {
                            "index": e.index,
                            "jobs_submitted": e.jobs_submitted,
                            "jobs_completed": e.jobs_completed,
                            "tasks_completed": e.tasks_completed,
                            "tasks_killed": e.tasks_killed,
                            "queue_depth": e.queue_depth,
                            "p99_primary_ms": e.p99_primary_ms,
                        }
                        for e in v.epochs
                    ]
                }
                for name, v in self.variants.items()
            },
        }

    def render(self) -> str:
        """Per-epoch table, one row per (variant, epoch) window."""
        from repro.experiments.report import format_table

        rows = []
        for name, v in self.variants.items():
            for e in v.epochs:
                rows.append(
                    [
                        name,
                        e.index,
                        f"{e.start_seconds:.0f}-{e.end_seconds:.0f}s",
                        f"{e.p99_primary_ms:.0f}",
                        e.jobs_submitted,
                        e.jobs_completed,
                        f"{e.harvest_throughput_tasks_per_hour:.0f}",
                        e.tasks_killed,
                        f"{100 * e.kill_rate:.1f}%",
                        e.queue_depth,
                    ]
                )
        return format_table(
            [
                "variant",
                "epoch",
                "window",
                "p99 (ms)",
                "submitted",
                "completed",
                "tasks/h",
                "kills",
                "kill rate",
                "queue",
            ],
            rows,
            title=f"Continuous run — {self.traffic}",
        )


# ---------------------------------------------------------------------------
# Workload-substrate scenario kinds (failure storms, heterogeneous fleets,
# antagonist tenants, predictor ablations)
# ---------------------------------------------------------------------------


@dataclass
class StormVariantResult:
    """One (variant, storm rate) durability cell under correlated storms."""

    variant: str
    storm_rate_per_day: float
    blocks_created: int
    blocks_lost: int
    reimage_events: int
    storms: int

    @property
    def lost_fraction(self) -> float:
        """Fraction of created blocks that were lost."""
        return self.blocks_lost / self.blocks_created if self.blocks_created else 0.0


@dataclass
class FailureStormResult:
    """Failure-storm scenario: block loss per variant and storm intensity."""

    datacenter: str
    replication: int
    results: Dict[Tuple[str, float], StormVariantResult] = field(
        default_factory=dict
    )

    def result(self, variant: str, storm_rate: float) -> StormVariantResult:
        """Result for one variant at one storm rate."""
        return self.results[(variant, storm_rate)]

    def headline(self) -> Dict[str, Dict[str, int]]:
        """Fingerprint-relevant numbers: created/lost per (variant, rate)."""
        return {
            f"{variant}-s{rate}": {
                "blocks_created": r.blocks_created,
                "blocks_lost": r.blocks_lost,
                "storms": r.storms,
            }
            for (variant, rate), r in sorted(self.results.items())
        }

    def render(self) -> str:
        """The failure-storm table."""
        from repro.experiments.report import format_table

        rows = [
            [variant, f"{rate:g}/day", r.storms, r.reimage_events,
             r.blocks_created, r.blocks_lost, f"{100 * r.lost_fraction:.4f}%"]
            for (variant, rate), r in sorted(self.results.items())
        ]
        return format_table(
            ["variant", "storm rate", "storms", "reimages", "created", "lost",
             "lost %"],
            rows,
            title=f"Failure storms — {self.datacenter} (R={self.replication})",
        )


@dataclass
class HeterogeneousFleetResult:
    """Mixed-capacity fleet: scheduling outcomes per variant, plus the mix."""

    no_harvesting_p99_ms: float
    class_counts: Dict[str, int]
    elastic_tenants: int
    variants: Dict[str, VariantSchedulingResult] = field(default_factory=dict)

    def variant(self, name: str) -> VariantSchedulingResult:
        """Result for one variant by name (e.g. ``"YARN-H"``)."""
        return self.variants[name]

    def headline(self) -> Dict[str, object]:
        """Fingerprint-relevant numbers: mix, baseline, per-variant summary."""
        return {
            "no_harvesting_p99_ms": self.no_harvesting_p99_ms,
            "class_counts": dict(sorted(self.class_counts.items())),
            "elastic_tenants": self.elastic_tenants,
            "variants": {
                name: {
                    "average_p99_ms": v.average_p99_ms,
                    "average_job_seconds": v.average_job_seconds,
                    "jobs_completed": v.jobs_completed,
                    "tasks_killed": v.tasks_killed,
                    "average_cpu_utilization": v.average_cpu_utilization,
                }
                for name, v in self.variants.items()
            },
        }

    def render(self) -> str:
        """The heterogeneous-fleet table."""
        from repro.experiments.report import format_table

        mix = ", ".join(
            f"{name}:{count}" for name, count in sorted(self.class_counts.items())
        )
        rows = [["No-Harvesting", f"{self.no_harvesting_p99_ms:.0f}", "-", "-", "-"]]
        for name, v in self.variants.items():
            rows.append([
                name, f"{v.average_p99_ms:.0f}", f"{v.average_job_seconds:.0f}",
                v.jobs_completed, v.tasks_killed,
            ])
        return format_table(
            ["variant", "avg p99 (ms)", "avg job (s)", "jobs", "kills"],
            rows,
            title=(
                f"Heterogeneous fleet [{mix}] "
                f"(+{self.elastic_tenants} elastic tenants)"
            ),
        )


@dataclass
class AntagonistPoint:
    """One (variant, spike rate) cell under adversarial primary spikes."""

    variant: str
    spike_rate_per_hour: float
    baseline_p99_ms: float
    average_p99_ms: float
    average_job_seconds: float
    jobs_completed: int
    tasks_killed: int

    @property
    def slo_inflation(self) -> float:
        """Harvest-SLO pressure: p99 relative to the spiked baseline."""
        if self.baseline_p99_ms <= 0:
            return 1.0
        return self.average_p99_ms / self.baseline_p99_ms


@dataclass
class AntagonistResult:
    """Antagonist scenario: SLO pressure per variant and spike intensity."""

    points: List[AntagonistPoint] = field(default_factory=list)

    def point(self, variant: str, spike_rate: float) -> AntagonistPoint:
        """Result for one variant at one spike rate."""
        for p in self.points:
            if p.variant == variant and p.spike_rate_per_hour == spike_rate:
                return p
        raise KeyError((variant, spike_rate))

    def headline(self) -> Dict[str, object]:
        """Fingerprint-relevant numbers per (variant, spike rate)."""
        return {
            f"{p.variant}-a{p.spike_rate_per_hour:g}": {
                "baseline_p99_ms": p.baseline_p99_ms,
                "average_p99_ms": p.average_p99_ms,
                "average_job_seconds": p.average_job_seconds,
                "jobs_completed": p.jobs_completed,
                "tasks_killed": p.tasks_killed,
            }
            for p in self.points
        }

    def render(self) -> str:
        """The antagonist table."""
        from repro.experiments.report import format_table

        rows = [
            [p.variant, f"{p.spike_rate_per_hour:g}/h",
             f"{p.baseline_p99_ms:.0f}", f"{p.average_p99_ms:.0f}",
             f"{p.slo_inflation:.2f}x", p.jobs_completed, p.tasks_killed]
            for p in self.points
        ]
        return format_table(
            ["variant", "spikes", "baseline p99", "avg p99 (ms)", "inflation",
             "jobs", "kills"],
            rows,
            title="Antagonist tenants",
        )


@dataclass
class PredictorVariantResult:
    """One predictor arm: history-based vs online feedback reserve sizing."""

    variant: str
    average_p99_ms: float
    average_job_seconds: float
    jobs_completed: int
    tasks_killed: int
    average_cpu_utilization: float
    final_reserve_fraction: float
    reserve_adjustments: int


@dataclass
class PredictorAblationResult:
    """Predictor ablation: the harvest predictor against a feedback loop."""

    variants: Dict[str, PredictorVariantResult] = field(default_factory=dict)

    def variant(self, name: str) -> PredictorVariantResult:
        """Result for one predictor arm by name (e.g. ``"YARN-FB"``)."""
        return self.variants[name]

    def headline(self) -> Dict[str, object]:
        """Fingerprint-relevant numbers per predictor arm."""
        return {
            name: {
                "average_p99_ms": v.average_p99_ms,
                "average_job_seconds": v.average_job_seconds,
                "jobs_completed": v.jobs_completed,
                "tasks_killed": v.tasks_killed,
                "average_cpu_utilization": v.average_cpu_utilization,
                "final_reserve_fraction": v.final_reserve_fraction,
                "reserve_adjustments": v.reserve_adjustments,
            }
            for name, v in self.variants.items()
        }

    def render(self) -> str:
        """The predictor-ablation table."""
        from repro.experiments.report import format_table

        rows = [
            [name, f"{v.average_p99_ms:.0f}", f"{v.average_job_seconds:.0f}",
             v.jobs_completed, v.tasks_killed,
             f"{v.final_reserve_fraction:.2f}", v.reserve_adjustments]
            for name, v in self.variants.items()
        ]
        return format_table(
            ["predictor", "avg p99 (ms)", "avg job (s)", "jobs", "kills",
             "reserve", "adjusts"],
            rows,
            title="Predictor ablation",
        )


# ---------------------------------------------------------------------------
# JSON export
# ---------------------------------------------------------------------------


def result_to_jsonable(value):
    """Convert any scenario result (or nested piece of one) to JSON-safe data.

    Dataclasses become objects, enums their values, numpy scalars/arrays
    plain floats/lists, and non-string dict keys (the durability results are
    keyed by ``(variant, replication)`` tuples) dash-joined strings.  Used by
    ``repro run-scenario --json`` and the benchmark emitter.
    """
    import dataclasses
    import enum

    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        # Fields marked ``metadata={"jsonable": False}`` are observability
        # side-channels (e.g. scheduler counters): carried on the payload
        # and surfaced elsewhere in the run document, but excluded here so
        # the fingerprinted result JSON is unchanged by their presence.
        return {
            f.name: result_to_jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
            if f.metadata.get("jsonable", True)
        }
    if isinstance(value, enum.Enum):
        return result_to_jsonable(value.value)
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if isinstance(key, tuple):
                key = "-".join(str(result_to_jsonable(part)) for part in key)
            elif not isinstance(key, str):
                key = str(result_to_jsonable(key))
            out[key] = result_to_jsonable(item)
        return out
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, (list, tuple)):
        return [result_to_jsonable(item) for item in value]
    return value
