"""Tests for the simulated shared server and its container lifecycle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.resources import Resource
from repro.cluster.server import ContainerState, SimulatedServer
from repro.traces.datacenter import PrimaryTenant, Server
from repro.traces.utilization import UtilizationPattern, UtilizationTrace


def make_server(utilization: float = 0.25) -> SimulatedServer:
    tenant = PrimaryTenant(
        tenant_id="t",
        environment="env",
        machine_function="mf",
        trace=UtilizationTrace(
            np.full(100, utilization), UtilizationPattern.CONSTANT
        ),
        pattern=UtilizationPattern.CONSTANT,
    )
    server = Server("s0", "t", cores=12, memory_gb=32.0)
    tenant.servers.append(server)
    return SimulatedServer(server, tenant)


class TestPrimaryTracking:
    def test_primary_usage_follows_trace(self):
        server = make_server(utilization=0.5)
        usage = server.primary_usage(0.0)
        assert usage.cores == pytest.approx(6.0)

    def test_utilization_override(self):
        server = make_server(utilization=0.2)
        server.set_utilization_override(lambda t: 0.9)
        assert server.primary_utilization(10.0) == pytest.approx(0.9)
        server.set_utilization_override(None)
        assert server.primary_utilization(10.0) == pytest.approx(0.2)

    def test_override_clamped(self):
        server = make_server()
        server.set_utilization_override(lambda t: 2.0)
        assert server.primary_utilization(0.0) == 1.0


class TestContainers:
    def test_available_respects_primary_and_reserve(self):
        server = make_server(utilization=0.25)  # 3 cores
        available = server.available_for_harvesting(0.0)
        # 12 - 3 (primary) - 4 (reserve) = 5 cores.
        assert available.cores == pytest.approx(5.0)

    def test_launch_and_complete(self):
        server = make_server()
        assert server.can_host(Resource(2.0, 4.0), 0.0)
        container = server.launch_container("task", "job", Resource(2.0, 4.0), 0.0)
        assert container.state is ContainerState.RUNNING
        assert server.allocated().cores == pytest.approx(2.0)
        server.complete_container(container.container_id, 10.0)
        assert container.state is ContainerState.COMPLETED
        assert server.allocated().is_zero()

    def test_cannot_host_more_than_available(self):
        server = make_server(utilization=0.25)
        assert not server.can_host(Resource(6.0, 4.0), 0.0)

    def test_double_finish_rejected(self):
        server = make_server()
        container = server.launch_container("task", "job", Resource(1.0, 1.0), 0.0)
        server.complete_container(container.container_id, 5.0)
        with pytest.raises(ValueError):
            server.complete_container(container.container_id, 6.0)

    def test_total_utilization_combines_primary_and_secondary(self):
        server = make_server(utilization=0.25)
        server.launch_container("task", "job", Resource(3.0, 4.0), 0.0)
        assert server.total_cpu_utilization(0.0) == pytest.approx(0.5)


class TestReserveReclaim:
    def test_no_kills_when_reserve_intact(self):
        server = make_server(utilization=0.25)
        server.launch_container("t1", "j", Resource(2.0, 2.0), 0.0)
        assert server.reclaim_reserve(1.0) == []

    def test_kills_youngest_first_when_primary_spikes(self):
        server = make_server(utilization=0.25)
        old = server.launch_container("old", "j", Resource(3.0, 4.0), 0.0)
        young = server.launch_container("young", "j", Resource(2.0, 2.0), 100.0)
        # Primary spikes to 60% (8 cores rounded up): 12 - 8 - 4 = 0 harvestable.
        server.set_utilization_override(lambda t: 0.6)
        killed = server.reclaim_reserve(200.0)
        assert killed, "expected kills after the primary spike"
        assert killed[0].task_id == "young"
        assert young.state is ContainerState.KILLED

    def test_kills_stop_once_reserve_restored(self):
        server = make_server(utilization=0.25)
        server.launch_container("a", "j", Resource(2.0, 2.0), 0.0)
        server.launch_container("b", "j", Resource(2.0, 2.0), 10.0)
        # Mild spike: only one container's worth of violation.
        server.set_utilization_override(lambda t: 0.42)  # 5.04 -> 6 cores
        killed = server.reclaim_reserve(100.0)
        assert len(killed) == 1
