"""Determinism regression for the compute-harvesting scheduler stack.

PR 1 fixed a ``PYTHONHASHSEED``-dependent flake in the reimage replay by
pinning a set iteration to sorted order.  The audit of the RM request/kill
paths (this PR) found the equivalent constructs all pinned already —
insertion-ordered dicts for the server records, running containers, and DAG
vertices, plus the explicitly sorted ``topological_levels`` — and these tests
keep it that way: the scheduling testbed must reproduce bit-identical
headline numbers run over run, both within a process and across processes
with different hash seeds.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

from repro.experiments.testbed import run_scheduling_testbed
from repro.harness.config import TINY_SCALE


def _fingerprint(result) -> dict:
    out = {"baseline": result.no_harvesting_p99_ms}
    for name, variant in result.variants.items():
        out[name] = {
            "avg_p99": variant.average_p99_ms,
            "max_p99": variant.max_p99_ms,
            "samples": list(variant.latency_samples),
            "avg_job": variant.average_job_seconds,
            "jobs": variant.jobs_completed,
            "kills": variant.tasks_killed,
            "cpu": variant.average_cpu_utilization,
            "job_seconds": list(variant.job_execution_seconds),
        }
    return out


_SUBPROCESS_SNIPPET = """
import json, sys
from repro.experiments.testbed import run_scheduling_testbed
from repro.harness.config import TINY_SCALE
from tests.test_determinism_scheduling import _fingerprint
print(json.dumps(_fingerprint(run_scheduling_testbed(TINY_SCALE, seed=5))))
"""


def test_scheduling_testbed_repeats_bit_identically():
    first = _fingerprint(run_scheduling_testbed(TINY_SCALE, seed=5))
    second = _fingerprint(run_scheduling_testbed(TINY_SCALE, seed=5))
    assert first == second


def test_scheduling_testbed_stable_across_hash_seeds():
    """The PYTHONHASHSEED flakiness class: same run, different hash seeds."""
    outputs = []
    for hash_seed in ("1", "2"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.getcwd(), env.get("PYTHONPATH", "")) if p
        )
        completed = subprocess.run(
            [sys.executable, "-c", _SUBPROCESS_SNIPPET],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert completed.returncode == 0, completed.stderr
        outputs.append(json.loads(completed.stdout))
    assert outputs[0] == outputs[1]
