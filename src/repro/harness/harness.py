"""The experiment harness: one thin executor for every scenario kind.

Since the ``repro.api`` redesign the harness no longer knows anything about
scenario kinds: every runner declares its **cell grid** (see
:mod:`repro.harness.cells`) and the harness merely executes it — either
serially in-process, or across a ``ProcessPoolExecutor`` (spawn) when
``workers > 1``.

The parent prepares the shared context once and ships it as a
:class:`~repro.harness.snapshot.ContextSnapshot`: pool workers *deserialize*
the prepared context instead of rebuilding it from ``(spec, seed)`` (one
pickle load versus, for fig14, reconstructing every datacenter fleet), and
execute cells purely from their recorded child seeds.  The parent
reassembles partial results in deterministic cell order, so a parallel run
is bit-identical to the serial one by construction.

The same snapshot doubles as the checkpoint format: with a
``checkpoint_dir`` the harness persists the context once and every
completed cell atomically, and a resumed run restores the context from disk
(never rebuilds) and executes only the missing cells — fingerprints match
the straight-line run exactly.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.harness.cells import Cell, CellTiming
from repro.harness.runners import RUNNERS, ScenarioRunner
from repro.harness.snapshot import (
    CheckpointPause,
    RunCheckpoint,
    SnapshotError,
    deserialize_snapshot,
    restore_runner,
    serialize_snapshot,
    snapshot_digest,
    snapshot_runner,
)
from repro.harness.spec import ScenarioSpec, get_scenario
from repro.simulation.metrics import MetricRegistry
from repro.simulation.random import RandomSource

#: Per-process cache of the restored runner, keyed by snapshot digest; a
#: pool worker deserializes the parent's prepared context once and serves
#: every cell it is handed from it.
_WORKER_STATE: dict = {}


def _build_runner(
    spec: ScenarioSpec, seed: int, metrics: Optional[MetricRegistry] = None
) -> ScenarioRunner:
    runner_cls = RUNNERS.get(spec.kind)
    if runner_cls is None:
        raise ValueError(f"no runner registered for kind {spec.kind!r}")
    return runner_cls(
        spec, RandomSource(seed), metrics if metrics is not None else MetricRegistry()
    )


def cells_from_spec(
    scenario: Union[str, ScenarioSpec], seed: Optional[int] = None
) -> List[Cell]:
    """A scenario's cell grid, without building its shared context.

    Child-seed derivation is pure arithmetic, so every built-in kind can
    name its grid points — keys, seeds, coordinates — straight from the
    spec (fig14 previously built all N datacenter fleets just to enumerate).
    Kinds that cannot enumerate spec-only fall back to a full build.
    """
    spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
    effective = spec.seed if seed is None else int(seed)
    runner_cls = RUNNERS.get(spec.kind)
    if runner_cls is None:
        raise ValueError(f"no runner registered for kind {spec.kind!r}")
    cells = runner_cls.cells_from_spec(spec, effective)
    if cells is None:
        cells = _build_runner(spec, effective).cells()
    return cells


def _worker_init(data: bytes, digest: str) -> None:
    """Pool initializer: restore the parent's prepared context once.

    The restored runner is cached by snapshot digest, so a worker process
    that already holds this exact context (long-lived pools, repeated runs)
    skips even the deserialize.
    """
    if _WORKER_STATE.get("digest") == digest:
        _WORKER_STATE["reported"] = False
        return
    started = time.perf_counter()
    runner = restore_runner(deserialize_snapshot(data))
    _WORKER_STATE["digest"] = digest
    _WORKER_STATE["runner"] = runner
    _WORKER_STATE["cells"] = runner.cells()
    _WORKER_STATE["restore_seconds"] = time.perf_counter() - started
    _WORKER_STATE["reported"] = False


def _worker_run_cell(index: int) -> Tuple[int, Any, float, float]:
    """Execute one cell (by enumeration index) in a pool worker.

    The fourth element reports the worker's one-time context-restore cost
    (on the first cell each worker returns; 0.0 afterwards) so the parent
    can surface executor overhead without a side channel.
    """
    runner: ScenarioRunner = _WORKER_STATE["runner"]
    cell: Cell = _WORKER_STATE["cells"][index]
    started = time.perf_counter()
    partial = runner.run_cell(cell)
    seconds = time.perf_counter() - started
    restore_seconds = 0.0
    if not _WORKER_STATE.get("reported"):
        _WORKER_STATE["reported"] = True
        restore_seconds = float(_WORKER_STATE.get("restore_seconds", 0.0))
    return index, partial, seconds, restore_seconds


class ExperimentHarness:
    """Runs one :class:`ScenarioSpec` end to end.

    The harness owns the run's seed-derived random stream and its
    :class:`MetricRegistry`; the scenario's runner builds the fleet once,
    declares one cell per independent grid point (each with forked streams),
    and the harness executes the cells — serially, or on a spawn-based
    process pool when ``workers > 1`` — before the runner merges the partial
    results in cell order.  After ``run()`` the registry holds the
    scenario's headline numbers and :attr:`cell_timings` the per-cell
    wall-clock, so two runs with the same spec and seed produce identical
    snapshots regardless of worker count.

    With a ``checkpoint_dir`` the run persists its prepared context and each
    completed cell; ``resume=True`` restores the context from the checkpoint
    (validating spec and seed) and executes only the cells the previous run
    did not finish.  ``stop_after_cells`` pauses a (serial) run after that
    many newly executed cells by raising
    :class:`~repro.harness.snapshot.CheckpointPause` — the fault-injection
    hook the checkpoint tests and the CI resume smoke use.

    Executor overhead is recorded separately from cell work:
    :attr:`ctx_seconds` (parent context build or restore),
    :attr:`snapshot_seconds` (serializing the context for workers or the
    checkpoint), and :attr:`worker_restore_seconds` (each worker's one-time
    context restore).
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        seed: Optional[int] = None,
        metrics: Optional[MetricRegistry] = None,
        workers: int = 1,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        resume: bool = False,
        stop_after_cells: Optional[int] = None,
        runner_setup: Optional[Any] = None,
        cell_callback: Optional[Any] = None,
    ) -> None:
        self.spec = spec
        self.seed = spec.seed if seed is None else int(seed)
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self.workers = max(1, int(workers))
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
        self.resume = bool(resume)
        if stop_after_cells is not None:
            stop_after_cells = int(stop_after_cells)
            if stop_after_cells <= 0:
                raise ValueError("stop_after_cells must be positive")
            if self.checkpoint_dir is None:
                raise ValueError(
                    "stop_after_cells needs a checkpoint_dir — pausing "
                    "without one would just discard the progress"
                )
        self.stop_after_cells = stop_after_cells
        #: ``runner_setup(runner)`` runs once after the runner is built *or*
        #: restored — the hook point for attaching non-snapshot state such
        #: as a live ``on_epoch`` emission callback (runner instance
        #: attributes never survive snapshot/restore by design).
        self.runner_setup = runner_setup
        #: ``cell_callback(cell, partial)`` observes every completed cell as
        #: its result becomes available to the parent: resumed cells at
        #: checkpoint load, serial cells as they finish, pool cells as the
        #: pool yields them.  Lets callers stream per-cell output without
        #: waiting for the merge.
        self.cell_callback = cell_callback
        self.cell_timings: List[CellTiming] = []
        self.ctx_seconds = 0.0
        self.snapshot_seconds = 0.0
        self.worker_restore_seconds: List[float] = []
        self.resumed_cells = 0

    def run(self, workers: Optional[int] = None) -> Any:
        """Execute the scenario; returns its kind-specific result dataclass."""
        checkpoint = (
            RunCheckpoint(self.checkpoint_dir) if self.checkpoint_dir else None
        )
        done: Dict[int, Tuple[Any, CellTiming]] = {}
        snapshot_data: Optional[bytes] = None
        resumed = False
        started = time.perf_counter()
        if checkpoint is not None and self.resume and checkpoint.exists():
            snapshot, _meta = checkpoint.read_context()
            if snapshot.spec != self.spec or snapshot.seed != self.seed:
                raise SnapshotError(
                    f"checkpoint {checkpoint.directory} was written for "
                    f"{snapshot.spec.name!r} (seed {snapshot.seed}); this run "
                    f"is {self.spec.name!r} (seed {self.seed})"
                )
            runner = restore_runner(snapshot, self.metrics)
            done = checkpoint.completed_cells()
            self.resumed_cells = len(done)
            resumed = True
        else:
            runner = _build_runner(self.spec, self.seed, self.metrics)
        if self.runner_setup is not None:
            self.runner_setup(runner)
        cells = runner.cells()
        self.ctx_seconds = time.perf_counter() - started
        if done and self.cell_callback is not None:
            # Resumed cells stream to the observer too, in cell order, so a
            # resumed run replays the already-finished prefix before new
            # cells start arriving.
            for cell in cells:
                if cell.index in done:
                    self.cell_callback(cell, done[cell.index][0])

        if checkpoint is not None and not resumed:
            snapshot_data = self._serialize(runner)
            checkpoint.write_context(
                snapshot_data,
                {
                    "version": 1,
                    "scenario": self.spec.name,
                    "kind": self.spec.kind,
                    "seed": self.seed,
                    "digest": snapshot_digest(snapshot_data),
                    "total_cells": len(cells),
                },
            )

        pending = [cell for cell in cells if cell.index not in done]
        effective = self.workers if workers is None else max(1, int(workers))
        effective = min(effective, len(pending)) if pending else 1
        if self.stop_after_cells is not None:
            # The pause hook counts cells in completion order; only the
            # serial path has one.
            effective = 1
        if not pending:
            executed: Dict[int, Tuple[Any, CellTiming]] = {}
        elif effective > 1:
            executed = self._run_cells_parallel(
                runner, cells, pending, effective, checkpoint, snapshot_data
            )
        else:
            executed = self._run_cells_serial(runner, cells, pending, checkpoint)

        results = {**done, **executed}
        partials = [results[cell.index][0] for cell in cells]
        self.cell_timings = [results[cell.index][1] for cell in cells]
        return runner.merge(cells, partials)

    def _serialize(self, runner: ScenarioRunner) -> bytes:
        started = time.perf_counter()
        data = serialize_snapshot(snapshot_runner(runner))
        self.snapshot_seconds = time.perf_counter() - started
        return data

    def _run_cells_serial(
        self,
        runner: ScenarioRunner,
        cells: Sequence[Cell],
        pending: Sequence[Cell],
        checkpoint: Optional[RunCheckpoint],
    ) -> Dict[int, Tuple[Any, CellTiming]]:
        executed: Dict[int, Tuple[Any, CellTiming]] = {}
        for position, cell in enumerate(pending):
            started = time.perf_counter()
            partial = runner.run_cell(cell)
            timing = CellTiming(cell.index, cell.key, time.perf_counter() - started)
            if checkpoint is not None:
                checkpoint.record_cell(timing, partial)
            if self.cell_callback is not None:
                self.cell_callback(cell, partial)
            executed[cell.index] = (partial, timing)
            if (
                self.stop_after_cells is not None
                and len(executed) >= self.stop_after_cells
                and position + 1 < len(pending)
            ):
                assert self.checkpoint_dir is not None
                raise CheckpointPause(
                    self.resumed_cells + len(executed),
                    len(cells),
                    self.checkpoint_dir,
                )
        return executed

    def _run_cells_parallel(
        self,
        runner: ScenarioRunner,
        cells: Sequence[Cell],
        pending: Sequence[Cell],
        workers: int,
        checkpoint: Optional[RunCheckpoint],
        snapshot_data: Optional[bytes],
    ) -> Dict[int, Tuple[Any, CellTiming]]:
        """Execute ``pending`` on a spawn pool; partials return in cell order.

        The parent serializes its prepared context once (reusing the
        checkpoint's bytes when one was just written) and every worker
        restores it in its initializer — no context rebuild, no per-cell
        state pickling.  Results are reassembled by index before the merge.
        """
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        if snapshot_data is None:
            snapshot_data = self._serialize(runner)
        digest = snapshot_digest(snapshot_data)
        executed: Dict[int, Tuple[Any, CellTiming]] = {}
        context = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_worker_init,
            initargs=(snapshot_data, digest),
        ) as pool:
            for index, partial, seconds, restore_seconds in pool.map(
                _worker_run_cell, [cell.index for cell in pending]
            ):
                timing = CellTiming(index, cells[index].key, seconds)
                if restore_seconds:
                    self.worker_restore_seconds.append(restore_seconds)
                if checkpoint is not None:
                    checkpoint.record_cell(timing, partial)
                if self.cell_callback is not None:
                    self.cell_callback(cells[index], partial)
                executed[index] = (partial, timing)
        return executed


def run_scenario(
    scenario: Union[str, ScenarioSpec],
    seed: Optional[int] = None,
    metrics: Optional[MetricRegistry] = None,
    workers: int = 1,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    resume: bool = False,
) -> Any:
    """Run a scenario by name (registry lookup) or from an explicit spec."""
    spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
    return ExperimentHarness(
        spec,
        seed=seed,
        metrics=metrics,
        workers=workers,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    ).run()
