"""Experiment entry points: one per table or figure in the paper's evaluation.

Every driver assembles a :class:`repro.harness.ScenarioSpec` from its
arguments and hands it to the shared :class:`repro.harness.ExperimentHarness`,
which builds the synthetic fleet, runs the relevant simulators for each
system variant, and returns a small result dataclass the benchmarks consume.
The drivers expose ``quick`` knobs (shorter durations, fewer blocks, smaller
clusters) so the benchmark suite can regenerate every figure's shape in
minutes.
"""

from repro.experiments.config import ExperimentScale, TESTBED_SCALE, QUICK_SCALE
from repro.experiments.testbed import (
    SchedulingTestbedResult,
    StorageTestbedResult,
    run_scheduling_testbed,
    run_storage_testbed,
)
from repro.experiments.scheduling import (
    SchedulingSweepPoint,
    SchedulingSweepResult,
    run_datacenter_sweep,
    run_fleet_improvements,
)
from repro.experiments.durability import DurabilityResult, run_durability_experiment
from repro.experiments.availability import (
    AvailabilityResult,
    run_availability_experiment,
)
from repro.experiments.microbench import MicrobenchResult, run_microbenchmarks

__all__ = [
    "ExperimentScale",
    "TESTBED_SCALE",
    "QUICK_SCALE",
    "SchedulingTestbedResult",
    "StorageTestbedResult",
    "run_scheduling_testbed",
    "run_storage_testbed",
    "SchedulingSweepPoint",
    "SchedulingSweepResult",
    "run_datacenter_sweep",
    "run_fleet_improvements",
    "DurabilityResult",
    "run_durability_experiment",
    "AvailabilityResult",
    "run_availability_experiment",
    "MicrobenchResult",
    "run_microbenchmarks",
]
