"""Tests for blocks, replicas, and the per-server DataNode."""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage.block import Block, BlockReplica
from repro.storage.datanode import DataNode
from repro.traces.datacenter import PrimaryTenant, Server
from repro.traces.utilization import UtilizationPattern, UtilizationTrace


def make_block(replication: int = 3) -> Block:
    return Block("b1", target_replication=replication)


def make_datanode(
    utilization: float = 0.3, primary_aware: bool = True, disk: float = 10.0
) -> DataNode:
    tenant = PrimaryTenant(
        tenant_id="t",
        environment="env",
        machine_function="mf",
        trace=UtilizationTrace(np.full(50, utilization), UtilizationPattern.CONSTANT),
        pattern=UtilizationPattern.CONSTANT,
    )
    server = Server("s0", "t", disk_gb=disk * 2, harvestable_disk_gb=disk)
    tenant.servers.append(server)
    return DataNode(server=server, tenant=tenant, primary_aware=primary_aware)


class TestBlock:
    def test_validation(self):
        with pytest.raises(ValueError):
            Block("b", size_gb=0.0)
        with pytest.raises(ValueError):
            Block("b", target_replication=0)

    def test_add_and_count_replicas(self):
        block = make_block()
        block.add_replica(BlockReplica("s1", "t1"))
        block.add_replica(BlockReplica("s2", "t2"))
        assert block.healthy_count == 2
        assert block.missing_replicas == 1
        assert set(block.servers_with_healthy_replicas()) == {"s1", "s2"}
        assert set(block.tenants_with_healthy_replicas()) == {"t1", "t2"}

    def test_duplicate_server_replica_rejected(self):
        block = make_block()
        block.add_replica(BlockReplica("s1", "t1"))
        with pytest.raises(ValueError):
            block.add_replica(BlockReplica("s1", "t1"))

    def test_destroy_and_loss(self):
        block = make_block(replication=2)
        block.add_replica(BlockReplica("s1", "t1"))
        block.add_replica(BlockReplica("s2", "t2"))
        assert block.destroy_replica_on("s1", 10.0)
        assert not block.lost
        assert block.missing_replicas == 1
        assert block.destroy_replica_on("s2", 20.0)
        assert block.lost
        assert block.healthy_count == 0

    def test_destroying_missing_replica_is_noop(self):
        block = make_block()
        assert not block.destroy_replica_on("unknown", 0.0)
        block.add_replica(BlockReplica("s1", "t1"))
        block.destroy_replica_on("s1", 0.0)
        assert not block.destroy_replica_on("s1", 1.0)


class TestDataNode:
    def test_space_accounting(self):
        datanode = make_datanode(disk=1.0)
        block = Block("b1", size_gb=0.25)
        datanode.store_replica(block)
        assert datanode.used_space_gb == pytest.approx(0.25)
        assert datanode.free_space_gb == pytest.approx(0.75)
        datanode.remove_replica(block)
        assert datanode.used_space_gb == 0.0

    def test_quota_never_exceeded(self):
        """Goal G1: never use more space than the primary tenant allows."""
        datanode = make_datanode(disk=0.5)
        datanode.store_replica(Block("b1", size_gb=0.25))
        datanode.store_replica(Block("b2", size_gb=0.25))
        with pytest.raises(ValueError):
            datanode.store_replica(Block("b3", size_gb=0.25))

    def test_duplicate_replica_rejected(self):
        datanode = make_datanode()
        block = Block("b1", size_gb=0.25)
        datanode.store_replica(block)
        with pytest.raises(ValueError):
            datanode.store_replica(block)

    def test_reimage_clears_everything(self):
        datanode = make_datanode()
        blocks = [Block(f"b{i}", size_gb=0.25) for i in range(3)]
        for block in blocks:
            datanode.store_replica(block)
        lost = datanode.reimage()
        assert lost == {"b0", "b1", "b2"}
        assert datanode.used_space_gb == 0.0
        assert datanode.stored_block_ids == set()

    def test_busy_above_threshold(self):
        busy = make_datanode(utilization=0.8)
        idle = make_datanode(utilization=0.3)
        assert busy.is_busy(0.0)
        assert not busy.can_serve(0.0)
        assert not idle.is_busy(0.0)

    def test_stock_datanode_never_busy(self):
        datanode = make_datanode(utilization=0.9, primary_aware=False)
        assert not datanode.is_busy(0.0)
        assert datanode.can_serve(0.0)

    def test_busy_threshold_validated(self):
        with pytest.raises(ValueError):
            DataNode(
                server=Server("s", "t"),
                tenant=PrimaryTenant("t", "e", "m"),
                busy_threshold=0.0,
            )
