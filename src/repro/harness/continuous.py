"""The ``continuous`` scenario kind: live traffic with windowed metrics.

Where the figure runners materialize one workload and report a terminal
payload, :class:`ContinuousRunner` drives a
:class:`~repro.jobs.scheduler_variants.HarvestingCluster` under a
:class:`~repro.harness.traffic.TrafficDriver` arrival process and reports
*per-epoch* windowed metrics — p99 primary latency, harvest throughput,
kill rate, queue depth — as a
:class:`~repro.harness.results.ContinuousResult`.

Epoch metrics are computed **streamingly**: a
:class:`~repro.harness.streaming.StreamingEpochAggregator` is installed as
the cluster's series recorder, folds each closed window's heartbeat rows
into per-minute latency samples at the
:class:`~repro.harness.traffic.EpochRecorder` boundary, and emits the
finalized :class:`~repro.harness.results.EpochMetrics` the moment its
window can no longer change — so retained series state is O(window), not
O(horizon), and callers can observe epochs incrementally via the runner's
``on_epoch`` hook (see :func:`repro.api.run_continuous`).  The streamed
fold is bit-identical to the retired full-horizon post-hoc pass.

Cell grid: one cell per scheduler variant.  Each cell records the four
child seeds its serial forks resolve to (cluster, workload factory, traffic
process, latency model) and replays the *entire* continuous simulation from
them in :meth:`ContinuousRunner.run_cell`, so the epoch stream is
bit-identical whether cells run serially or on a process pool.  Epochs
within a cell are inherently sequential (epoch N's cluster state feeds
epoch N+1), which is why the variant — not the epoch — is the unit of
parallelism.

Kind-specific spec params (all reachable via ``repro run-scenario``
``--traffic/--epochs/--epoch-seconds/--max-sim-seconds`` or ``repro.api``
overrides):

* ``traffic`` — a :func:`~repro.harness.traffic.parse_traffic` spec string;
* ``epochs`` — number of metric windows (the horizon is their sum), or
  ``0`` to run forever — epochs stream unbounded until the horizon below;
* ``epoch_seconds`` — window length in simulated seconds;
* ``max_sim_seconds`` — the run-forever horizon (required with, and only
  valid with, ``epochs=0``).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.harness.builders import build_testbed_tenants
from repro.harness.cells import Cell
from repro.harness.results import (
    ContinuousResult,
    EpochMetrics,
    VariantContinuousResult,
)
from repro.harness.runners import (
    _SCHEDULING_VARIANT_MODES,
    ScenarioRunner,
    _register,
)
from repro.harness.spec import ScenarioSpec
from repro.harness.streaming import StreamingEpochAggregator
from repro.harness.traffic import EpochRecorder, factory_from_spec, parse_traffic
from repro.jobs.scheduler_variants import ClusterConfig, HarvestingCluster
from repro.simulation.random import RandomSource

#: Default horizon: eight 10-minute windows.
DEFAULT_EPOCHS = 8
DEFAULT_EPOCH_SECONDS = 600.0
#: Default arrival process: one job every ~200s, open loop.
DEFAULT_TRAFFIC = "open:rate=0.005"


@_register
class ContinuousRunner(ScenarioRunner):
    """Continuous simulation under an arrival-process traffic driver.

    Cell grid: one cell per scheduler variant, each carrying the four child
    seeds its serial forks resolved to (cluster, workload factory, traffic,
    latency model).
    """

    kind = "continuous"
    SHARED_FORK_LABELS = ("testbed-dc9",)

    #: Optional live-emission hook, called as ``on_epoch(variant, metrics)``
    #: the moment an epoch finalizes inside :meth:`run_cell`.  A class-level
    #: default (never instance state) so it is invisible to context
    #: snapshots — restored runners come back with the hook unset and the
    #: harness re-attaches it via its ``runner_setup`` hook.
    on_epoch: Optional[Callable[[str, EpochMetrics], None]] = None

    def _prepare(self) -> Dict[str, Any]:
        return {"tenants": build_testbed_tenants(self.spec.scale, self.rng)}

    @classmethod
    def _grid_cells(cls, spec: ScenarioSpec, fork_seed: Any) -> List[Cell]:
        cells: List[Cell] = []
        for name in spec.variants:
            cells.append(
                Cell(
                    index=len(cells),
                    key=name,
                    seeds=(
                        fork_seed(f"cluster-{name}"),
                        fork_seed("tpcds"),
                        fork_seed(f"traffic-{name}"),
                        fork_seed(f"latency-{name}"),
                    ),
                    coords={"variant": name},
                )
            )
        return cells

    def _enumerate_cells(self) -> List[Cell]:
        return self._grid_cells(self.spec, self.fork_seed)

    # -- execution ----------------------------------------------------------

    def run_cell(self, cell: Cell) -> VariantContinuousResult:
        name = cell.coord("variant")
        hook = self.on_epoch
        return _run_continuous_variant(
            name,
            self.ctx["tenants"],
            cell.seeds,
            traffic=str(self.spec.param("traffic", DEFAULT_TRAFFIC)),
            workload=self.spec.param("workload", None),
            epochs=int(self.spec.param("epochs", DEFAULT_EPOCHS)),
            epoch_seconds=float(
                self.spec.param("epoch_seconds", DEFAULT_EPOCH_SECONDS)
            ),
            max_sim_seconds=self._max_sim_seconds(),
            on_epoch=(
                (lambda metrics: hook(name, metrics)) if hook is not None else None
            ),
        )

    def _max_sim_seconds(self) -> Optional[float]:
        value = self.spec.param("max_sim_seconds", None)
        return None if value is None else float(value)

    def merge(
        self, cells: Sequence[Cell], partials: Sequence[Any]
    ) -> ContinuousResult:
        epochs = int(self.spec.param("epochs", DEFAULT_EPOCHS))
        epoch_seconds = float(
            self.spec.param("epoch_seconds", DEFAULT_EPOCH_SECONDS)
        )
        variants: Dict[str, VariantContinuousResult] = {}
        for outcome in partials:
            variants[outcome.variant] = outcome
            p99 = self.metrics.distribution(
                f"continuous.{outcome.variant}.p99_ms"
            )
            for epoch in outcome.epochs:
                p99.add(epoch.p99_primary_ms)
            self.metrics.counter(
                f"continuous.{outcome.variant}.jobs_completed"
            ).increment(outcome.jobs_completed)
            self.metrics.counter(
                f"continuous.{outcome.variant}.tasks_killed"
            ).increment(outcome.tasks_killed)
        if not epochs:
            # Run-forever: the window count is whatever the horizon produced
            # (identical across variants — boundaries are time-driven).
            epochs = max((len(v.epochs) for v in variants.values()), default=0)
        return ContinuousResult(
            traffic=str(self.spec.param("traffic", DEFAULT_TRAFFIC)),
            epoch_seconds=epoch_seconds,
            num_epochs=epochs,
            variants=variants,
        )


def _run_continuous_variant(
    name: str,
    tenants,
    seeds: Tuple[int, ...],
    *,
    traffic: str,
    workload: Any = None,
    epochs: int,
    epoch_seconds: float,
    max_sim_seconds: Optional[float] = None,
    on_epoch: Optional[Callable[[EpochMetrics], None]] = None,
) -> VariantContinuousResult:
    """One variant's full continuous run, purely from its recorded seeds.

    The horizon is ``epochs * epoch_seconds`` in bounded mode; run-forever
    mode (``epochs == 0``) requires ``max_sim_seconds`` as the horizon and
    streams however many windows fit in it (a trailing partial window
    closes at the horizon).
    """
    if epochs < 0:
        raise ValueError("epochs must be non-negative (0 = run forever)")
    if epoch_seconds <= 0:
        raise ValueError("epoch_seconds must be positive")
    if epochs == 0:
        if max_sim_seconds is None:
            raise ValueError(
                "epochs=0 (run forever) requires max_sim_seconds as the horizon"
            )
        if max_sim_seconds <= 0:
            raise ValueError("max_sim_seconds must be positive")
        horizon = float(max_sim_seconds)
    else:
        if max_sim_seconds is not None:
            raise ValueError(
                "max_sim_seconds only applies to run-forever mode (epochs=0)"
            )
        horizon = epochs * epoch_seconds

    mode = _SCHEDULING_VARIANT_MODES[name]
    cluster_rng, tpcds_rng, traffic_rng, latency_rng = (
        RandomSource(seed) for seed in seeds
    )
    cluster = HarvestingCluster(
        tenants,
        config=ClusterConfig(mode=mode),
        rng=cluster_rng,
    )
    aggregator = StreamingEpochAggregator(
        latency_rng=latency_rng,
        reserve_fraction=cluster.config.reserve_cpu_fraction,
        epochs=epochs,
        epoch_seconds=epoch_seconds,
        on_epoch=on_epoch,
    )
    cluster.set_series_recorder(aggregator)
    factory = factory_from_spec(
        workload, tpcds_rng, duration_scale=1.0, width_scale=0.35
    )
    driver = parse_traffic(traffic)
    driver.attach(cluster, factory, horizon, traffic_rng)
    recorder = EpochRecorder(
        cluster, driver, epoch_seconds, epochs, aggregator=aggregator
    )
    recorder.install()
    cluster.run(horizon)
    metrics = recorder.finalize(horizon)
    return VariantContinuousResult(
        variant=name,
        epochs=metrics,
        peak_tail_rows=aggregator.peak_tail_rows,
        peak_tail_bytes=aggregator.peak_tail_bytes,
        series_folds=aggregator.folds,
    )
