"""Integration tests for the end-to-end harvesting cluster."""

from __future__ import annotations

import pytest

from repro.cluster.resource_manager import SchedulerMode
from repro.jobs.scheduler_variants import ClusterConfig, HarvestingCluster
from repro.jobs.dag import JobDag, Vertex
from repro.jobs.tpcds import TpcdsWorkloadFactory
from repro.jobs.workload import WorkloadGenerator
from repro.simulation.random import RandomSource


def build_cluster(small_tenants, mode: SchedulerMode, **config_kwargs):
    return HarvestingCluster(
        small_tenants,
        config=ClusterConfig(mode=mode, **config_kwargs),
        rng=RandomSource(5),
    )


def quick_workload(rng_seed: int = 7):
    factory = TpcdsWorkloadFactory(
        RandomSource(rng_seed), duration_scale=0.3, width_scale=0.05
    )
    return WorkloadGenerator(factory, 120.0, RandomSource(rng_seed))


class TestHistoryCluster:
    def test_clustering_labels_every_server(self, small_tenants):
        cluster = build_cluster(small_tenants, SchedulerMode.HISTORY)
        for server_id in cluster.servers:
            record_label = cluster.resource_manager._record(server_id).label
            assert record_label is not None
        assert cluster.clustering.num_classes >= 3

    def test_class_capacities_cover_all_classes_with_servers(self, small_tenants):
        cluster = build_cluster(small_tenants, SchedulerMode.HISTORY)
        capacities = cluster.class_capacities(0.0)
        assert capacities
        for capacity in capacities:
            assert capacity.total_capacity > 0

    def test_jobs_complete_and_are_typed(self, small_tenants):
        cluster = build_cluster(small_tenants, SchedulerMode.HISTORY)
        generator = quick_workload()
        cluster.submit_arrivals(generator.arrivals(1200.0))
        cluster.run(3600.0)
        assert cluster.completed_job_count() > 0
        assert cluster.average_job_execution_seconds() > 0.0
        for result in cluster.results:
            assert result.job_type in {t for t in result.job_type.__class__}

    def test_recurring_jobs_get_history_based_types(self, small_tenants):
        cluster = build_cluster(small_tenants, SchedulerMode.HISTORY)
        dag = JobDag("recurring", [Vertex("v", 2, 30.0)])
        cluster.submit_job(dag)
        cluster.run(300.0)
        assert cluster.history.last_duration("recurring") is not None
        second = cluster.submit_job(dag)
        assert second.job_type is cluster.history.categorize("recurring")


class TestVariantComparison:
    @pytest.mark.parametrize(
        "mode",
        [SchedulerMode.STOCK, SchedulerMode.PRIMARY_AWARE, SchedulerMode.HISTORY],
    )
    def test_all_variants_run(self, small_tenants, mode):
        cluster = build_cluster(small_tenants, mode)
        generator = quick_workload()
        cluster.submit_arrivals(generator.arrivals(600.0))
        cluster.run(1800.0)
        assert cluster.completed_job_count() > 0
        assert cluster.metrics.time_series("total_utilization").count > 0

    def test_stock_mode_has_no_labels(self, small_tenants):
        cluster = build_cluster(small_tenants, SchedulerMode.STOCK)
        for server_id in cluster.servers:
            assert cluster.resource_manager._record(server_id).label is None

    def test_total_utilization_at_least_primary(self, small_tenants):
        cluster = build_cluster(small_tenants, SchedulerMode.HISTORY)
        generator = quick_workload()
        cluster.submit_arrivals(generator.arrivals(600.0))
        cluster.run(1800.0)
        primary = cluster.metrics.time_series("primary_utilization").mean()
        total = cluster.metrics.time_series("total_utilization").mean()
        assert total >= primary - 1e-9

    def test_run_duration_validated(self, small_tenants):
        cluster = build_cluster(small_tenants, SchedulerMode.HISTORY)
        with pytest.raises(ValueError):
            cluster.run(0.0)

    def test_server_series_recorded_when_enabled(self, small_tenants):
        cluster = build_cluster(
            small_tenants, SchedulerMode.PRIMARY_AWARE, record_server_series=True
        )
        cluster.run(60.0)
        series = cluster.server_series()
        assert len(series.times) > 0
        assert series.secondary_cpu.shape == (len(series.times), len(cluster.servers))
        assert series.primary_cpu.shape == series.secondary_cpu.shape
        assert series.server_ids == list(cluster.servers)
