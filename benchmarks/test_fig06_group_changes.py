"""Figure 6: month-to-month reimage-frequency group changes.

Tenants tend to keep their relative rank: at least 80% of tenants change
frequency group (infrequent / intermediate / frequent) 8 or fewer times out
of 35 possible monthly transitions in three years.  This is what makes the
reimage history useful for placement.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import characterize_datacenter
from repro.analysis.cdf import fraction_at_or_below
from repro.experiments.report import format_table
from repro.simulation.random import RandomSource
from repro.traces import build_datacenter, fleet_specs

from conftest import run_once

DATACENTERS = ("DC-0", "DC-7", "DC-9", "DC-3", "DC-1")
MONTHS = 36


def characterize(scale: float = 0.1):
    rng = RandomSource(0)
    results = {}
    for name in DATACENTERS:
        spec = [s for s in fleet_specs() if s.name == name][0]
        datacenter = build_datacenter(spec, rng, scale=scale)
        results[name] = characterize_datacenter(datacenter, months=MONTHS, rng=rng)
    return results


def test_fig06_group_changes(benchmark):
    results = run_once(benchmark, characterize)
    possible_changes = MONTHS - 1
    threshold = round(possible_changes * 8 / 35)
    # If group membership were re-drawn at random every month, a tenant would
    # change groups for two thirds of the transitions on average.
    random_baseline = possible_changes * 2.0 / 3.0

    rows = []
    for name in DATACENTERS:
        changes = results[name].group_changes_per_tenant
        rows.append([
            name,
            f"{np.mean(changes):.1f}",
            f"{100 * fraction_at_or_below(changes, threshold):.0f}%",
            possible_changes,
            f"{random_baseline:.1f}",
        ])
    print()
    print(format_table(
        ["DC", "mean changes", f"<= {threshold} changes", "possible changes",
         "random baseline"],
        rows,
        title="Figure 6: reimage-frequency group changes over three years",
    ))

    for name in DATACENTERS:
        changes = results[name].group_changes_per_tenant
        # The paper's claim is rank stability: tenants keep their relative
        # reimage-frequency group far more often than chance.  At the scaled
        # down tenant sizes the monthly rate estimates are noisier than the
        # production telemetry, so the stability is weaker than the paper's
        # "80% change at most 8 times" but must remain far below the
        # random-assignment baseline (see EXPERIMENTS.md, known deviations).
        assert float(np.mean(changes)) < 0.6 * random_baseline
        assert fraction_at_or_below(changes, threshold) > 0.1
        # Nobody can change more often than the number of transitions.
        assert max(changes) <= possible_changes
