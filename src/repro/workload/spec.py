"""The ``WorkloadSpec``: every random quantity of a workload, named.

One spec composes three halves the ROADMAP calls out (arrival times being
the fourth, already covered by :mod:`repro.harness.traffic`):

* :class:`JobShapeSpec` — the parametric family of job DAGs (stage counts,
  task fan-out, durations, per-stage jitter, container shapes).  The
  tapered-chain generator here is draw-for-draw identical to the legacy
  ``jobs/tpcds.py`` synthesizer, which now delegates to it.
* :class:`TenantMixSpec` — per-pattern tenant shares, the *named*
  primary-tenant utilization process (see
  :mod:`repro.workload.processes`), and a tenant *arrival* process for
  elastic primary load: new primary tenants appearing mid-run.
* an access-skew sampler (:mod:`repro.workload.distributions`) for the
  storage layer's block-read pattern.

Specs parse from the compact CLI string
(``"duration=uniform:low=40,high=90;shares=periodic:13,constant:3"``)
and serialize to plain dicts for trace headers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.simulation.random import RandomSource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.jobs.dag import JobDag, Vertex
from repro.workload.distributions import (
    Distribution,
    Exponential,
    IntegerRange,
    SkewSampler,
    Uniform,
    UniformSkew,
    distribution_from_dict,
    parse_distribution,
    parse_skew,
    skew_from_dict,
)
from repro.workload.processes import UTILIZATION_PROCESSES

#: The tenant behaviour patterns a mix may name shares for.
TENANT_PATTERNS = ("periodic", "constant", "unpredictable")


@dataclass(frozen=True)
class JobShapeSpec:
    """A parametric family of tapered linear-chain job DAGs.

    ``generate_dag`` consumes its stream in the exact order the legacy
    TPC-DS synthesizer did: one stage-count draw, one base-width draw, one
    base-duration draw, then one width-jitter and one duration-jitter draw
    per stage.
    """

    stages: Distribution = field(default_factory=lambda: IntegerRange(3, 6))
    width: Distribution = field(default_factory=lambda: IntegerRange(20, 120))
    duration: Distribution = field(default_factory=lambda: Uniform(40.0, 90.0))
    width_jitter: Distribution = field(default_factory=lambda: Uniform(0.7, 1.3))
    duration_jitter: Distribution = field(default_factory=lambda: Uniform(0.6, 1.4))
    stage_taper: float = 0.25
    min_taper: float = 0.15
    container_cores: float = 1.0
    container_memory_gb: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.stage_taper <= 1.0:
            raise ValueError(
                f"stage_taper must be in [0, 1] (got {self.stage_taper})"
            )
        if self.min_taper <= 0:
            raise ValueError(f"min_taper must be positive (got {self.min_taper})")
        if self.container_cores <= 0 or self.container_memory_gb <= 0:
            raise ValueError("container shape must be positive")

    def generate_dag(self, name: str, rng: RandomSource) -> "JobDag":
        """One synthetic job: a tapered chain of ``stages`` vertices."""
        # Imported lazily: ``repro.jobs`` builds its TPC-DS synthesizer on
        # this module's shape specs, so a module-level import would make
        # the workload package unimportable on its own.
        from repro.jobs.dag import JobDag, Vertex

        num_stages = max(1, int(self.stages.sample(rng)))
        base_width = max(1, int(self.width.sample(rng)))
        base_duration = float(self.duration.sample(rng))
        vertices: List[Vertex] = []
        previous: Optional[str] = None
        for stage in range(num_stages):
            # Widths taper towards the end of the pipeline (reduce stages
            # are narrower than the scans that feed them).
            taper = max(self.min_taper, 1.0 - self.stage_taper * stage)
            width = max(
                1, int(round(base_width * taper * self.width_jitter.sample(rng)))
            )
            duration = base_duration * self.duration_jitter.sample(rng)
            stage_name = f"Stage {stage + 1}"
            upstream = [previous] if previous is not None else []
            vertices.append(Vertex(stage_name, width, duration, upstream=upstream))
            previous = stage_name
        return JobDag(
            name,
            vertices,
            container_resource_cores=self.container_cores,
            container_resource_memory_gb=self.container_memory_gb,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "stages": self.stages.to_dict(),
            "width": self.width.to_dict(),
            "duration": self.duration.to_dict(),
            "width_jitter": self.width_jitter.to_dict(),
            "duration_jitter": self.duration_jitter.to_dict(),
            "stage_taper": self.stage_taper,
            "min_taper": self.min_taper,
            "container_cores": self.container_cores,
            "container_memory_gb": self.container_memory_gb,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "JobShapeSpec":
        kwargs = dict(data)
        for key in ("stages", "width", "duration", "width_jitter",
                    "duration_jitter"):
            if key in kwargs:
                kwargs[key] = distribution_from_dict(kwargs[key])
        return cls(**kwargs)


@dataclass(frozen=True)
class TenantMixSpec:
    """Tenant-population half of a workload: shares, process, arrivals."""

    shares: Tuple[Tuple[str, float], ...] = (
        ("periodic", 13.0), ("constant", 3.0), ("unpredictable", 5.0),
    )
    utilization_process: str = "testbed"
    tenant_arrivals_per_hour: float = 0.0
    arrival_mean_utilization: Distribution = field(
        default_factory=lambda: Uniform(0.2, 0.6)
    )

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "shares",
            tuple((str(p), float(s)) for p, s in self.shares),
        )
        if not self.shares:
            raise ValueError("tenant mix needs at least one pattern share")
        for pattern, share in self.shares:
            if pattern not in TENANT_PATTERNS:
                known = ", ".join(TENANT_PATTERNS)
                raise ValueError(
                    f"unknown tenant pattern {pattern!r}; known: {known}"
                )
            if share < 0:
                raise ValueError(
                    f"share for {pattern!r} must be non-negative (got {share})"
                )
        if sum(share for _, share in self.shares) <= 0:
            raise ValueError("tenant shares must sum to a positive value")
        if self.utilization_process not in UTILIZATION_PROCESSES:
            known = ", ".join(sorted(UTILIZATION_PROCESSES))
            raise ValueError(
                f"unknown utilization process {self.utilization_process!r}; "
                f"known: {known}"
            )
        if self.tenant_arrivals_per_hour < 0:
            raise ValueError(
                "tenant_arrivals_per_hour must be non-negative "
                f"(got {self.tenant_arrivals_per_hour})"
            )

    def share_weights(self) -> Tuple[Tuple[str, float], ...]:
        """Shares normalized to probabilities, in declaration order."""
        total = sum(share for _, share in self.shares)
        return tuple((p, s / total) for p, s in self.shares)

    def to_dict(self) -> Dict[str, object]:
        return {
            "shares": [list(pair) for pair in self.shares],
            "utilization_process": self.utilization_process,
            "tenant_arrivals_per_hour": self.tenant_arrivals_per_hour,
            "arrival_mean_utilization": self.arrival_mean_utilization.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TenantMixSpec":
        kwargs = dict(data)
        if "shares" in kwargs:
            kwargs["shares"] = tuple(tuple(pair) for pair in kwargs["shares"])
        if "arrival_mean_utilization" in kwargs:
            kwargs["arrival_mean_utilization"] = distribution_from_dict(
                kwargs["arrival_mean_utilization"]
            )
        return cls(**kwargs)


@dataclass(frozen=True)
class WorkloadSpec:
    """One named workload: job shapes + tenant mix + access skew."""

    name: str = "default"
    shape: JobShapeSpec = field(default_factory=JobShapeSpec)
    interarrival: Distribution = field(default_factory=lambda: Exponential(300.0))
    mix: TenantMixSpec = field(default_factory=TenantMixSpec)
    skew: SkewSampler = field(default_factory=UniformSkew)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "shape": self.shape.to_dict(),
            "interarrival": self.interarrival.to_dict(),
            "mix": self.mix.to_dict(),
            "skew": self.skew.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "WorkloadSpec":
        return cls(
            name=str(data.get("name", "default")),
            shape=JobShapeSpec.from_dict(data.get("shape", {})),
            interarrival=distribution_from_dict(
                data.get("interarrival", Exponential(300.0).to_dict())
            ),
            mix=TenantMixSpec.from_dict(data.get("mix", {})),
            skew=skew_from_dict(data.get("skew", UniformSkew().to_dict())),
        )


#: The spec the legacy testbed workload corresponds to.
DEFAULT_WORKLOAD = WorkloadSpec()

#: Compact-string keys ``parse_workload`` understands.
_SHAPE_KEYS = ("stages", "width", "duration", "width_jitter", "duration_jitter")
_KNOWN_KEYS = _SHAPE_KEYS + (
    "interarrival", "shares", "skew", "process", "tenant_arrivals_per_hour",
    "arrival_mean",
)


def _parse_shares(body: str) -> Tuple[Tuple[str, float], ...]:
    shares: List[Tuple[str, float]] = []
    for item in filter(None, body.split(",")):
        pattern, sep, raw = item.partition(":")
        if not sep:
            raise ValueError(
                f"bad share {item!r}: expected pattern:share (e.g. periodic:13)"
            )
        try:
            shares.append((pattern.strip(), float(raw)))
        except ValueError:
            raise ValueError(
                f"bad share {item!r}: {raw!r} is not a number"
            ) from None
    return tuple(shares)


def parse_workload(text: str, base: Optional[WorkloadSpec] = None) -> WorkloadSpec:
    """Overlay compact ``key=value`` fields (``;``-separated) onto ``base``.

    Distribution-valued fields take the compact distribution syntax, e.g.
    ``"duration=uniform:low=40,high=90;shares=periodic:13,constant:3"``.
    Raises :class:`ValueError` on unknown keys, unknown distribution or
    process names, and negative rates/shares.
    """
    spec = base or DEFAULT_WORKLOAD
    shape, mix = spec.shape, spec.mix
    interarrival, skew = spec.interarrival, spec.skew
    for item in filter(None, (f.strip() for f in text.split(";"))):
        key, sep, value = item.partition("=")
        key = key.strip()
        if not sep or not value:
            raise ValueError(f"bad workload field {item!r}: expected key=value")
        if key in _SHAPE_KEYS:
            shape = replace(shape, **{key: parse_distribution(value)})
        elif key == "interarrival":
            interarrival = parse_distribution(value)
        elif key == "shares":
            mix = replace(mix, shares=_parse_shares(value))
        elif key == "skew":
            skew = parse_skew(value)
        elif key == "process":
            mix = replace(mix, utilization_process=value.strip())
        elif key == "tenant_arrivals_per_hour":
            try:
                rate = float(value)
            except ValueError:
                raise ValueError(
                    f"bad workload field {item!r}: {value!r} is not a number"
                ) from None
            mix = replace(mix, tenant_arrivals_per_hour=rate)
        elif key == "arrival_mean":
            mix = replace(mix, arrival_mean_utilization=parse_distribution(value))
        else:
            known = ", ".join(_KNOWN_KEYS)
            raise ValueError(f"unknown workload field {key!r}; known: {known}")
    return replace(
        spec, shape=shape, mix=mix, interarrival=interarrival, skew=skew
    )


def workload_from_param(value: object,
                        base: Optional[WorkloadSpec] = None) -> WorkloadSpec:
    """A scenario's ``params["workload"]`` string resolved to a spec."""
    if value in (None, ""):
        return base or DEFAULT_WORKLOAD
    if not isinstance(value, str):
        raise ValueError(
            f"workload param must be a compact spec string (got {value!r})"
        )
    return parse_workload(value, base)
