"""Batch jobs: DAG model, TPC-DS-like workload, and the Application Master.

The paper's secondary tenants are data-analytics jobs expressed as DAGs of
tasks (Hive queries on Tez).  This package provides:

* :mod:`repro.jobs.dag` — the job DAG model plus the breadth-first maximum
  concurrent-container estimate Algorithm 1 uses;
* :mod:`repro.jobs.tpcds` — a synthetic 52-query TPC-DS-like workload whose
  DAG shapes match the published example (Figure 7);
* :mod:`repro.jobs.app_master` — the history-aware Application Master that
  tracks task execution, restarts killed tasks, and records job durations;
* :mod:`repro.jobs.workload` — Poisson job arrival streams.
"""

from repro.jobs.dag import JobDag, Task, TaskState, Vertex
from repro.jobs.tpcds import TpcdsWorkloadFactory, tpcds_query_dag
from repro.jobs.app_master import ApplicationMaster, JobExecution, JobResult
from repro.jobs.workload import JobArrival, WorkloadGenerator

__all__ = [
    "JobDag",
    "Task",
    "TaskState",
    "Vertex",
    "TpcdsWorkloadFactory",
    "tpcds_query_dag",
    "ApplicationMaster",
    "JobExecution",
    "JobResult",
    "JobArrival",
    "WorkloadGenerator",
]
