"""Synthetic primary-tenant trace substrate.

The paper's policies consume AutoPilot telemetry: per-server CPU utilization
sampled every two minutes and per-server disk reimage events.  Those traces
are proprietary, so this package synthesizes statistically equivalent ones:

* :mod:`repro.traces.utilization` — month-long CPU utilization series for the
  three behaviour patterns the paper identifies (periodic, constant,
  unpredictable).
* :mod:`repro.traces.reimage` — Poisson reimage event streams with correlated
  (environment-wide) reimage bursts.
* :mod:`repro.traces.scaling` — the linear and nth-root utilization scaling
  methods used by the simulator to explore the utilization spectrum.
* :mod:`repro.traces.datacenter` — primary tenants, servers, environments,
  racks, and whole datacenters.
* :mod:`repro.traces.fleet` — presets for the ten production datacenters
  (DC-0 .. DC-9) with class mixes matching the published characterization.
"""

from repro.traces.utilization import (
    SAMPLE_INTERVAL_SECONDS,
    SAMPLES_PER_DAY,
    SAMPLES_PER_MONTH,
    TraceSpec,
    UtilizationPattern,
    UtilizationTrace,
    generate_trace,
)
from repro.traces.reimage import ReimageEvent, ReimageProfile, generate_reimage_events
from repro.traces.scaling import ScalingMethod, scale_trace, scale_to_target_mean
from repro.traces.datacenter import Datacenter, Environment, PrimaryTenant, Server
from repro.traces.fleet import (
    DatacenterSpec,
    build_datacenter,
    build_fleet,
    fleet_specs,
)
from repro.traces.matrix import TraceMatrix

__all__ = [
    "SAMPLE_INTERVAL_SECONDS",
    "SAMPLES_PER_DAY",
    "SAMPLES_PER_MONTH",
    "TraceSpec",
    "UtilizationPattern",
    "UtilizationTrace",
    "generate_trace",
    "ReimageEvent",
    "ReimageProfile",
    "generate_reimage_events",
    "ScalingMethod",
    "scale_trace",
    "scale_to_target_mean",
    "Datacenter",
    "Environment",
    "PrimaryTenant",
    "Server",
    "DatacenterSpec",
    "build_datacenter",
    "build_fleet",
    "fleet_specs",
    "TraceMatrix",
]
