"""Replica placement policies for the NameNode.

Three policies mirror the paper's systems:

* :class:`StockPlacementPolicy` — the default HDFS rule: first replica on the
  creating server, second on another server of the same rack, third on a
  remote rack.  It knows nothing about primary tenants.
* the PT variant simply reuses the stock policy but the NameNode excludes
  busy servers from the candidate set (that part lives in the NameNode).
* :class:`HistoryPlacementPolicy` — Algorithm 2: the two-dimensional grid
  clustering plus the row/column/environment diversity constraints,
  delegating to :class:`repro.core.placement.ReplicaPlacer`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Sequence

from repro.core.grid import GridClustering, TenantPlacementStats, build_grid
from repro.core.placement import PlacementConstraints, ReplicaPlacer
from repro.simulation.random import RandomSource
from repro.storage.datanode import DataNode


class PlacementPolicy(Protocol):
    """Interface the NameNode uses to pick replica destinations."""

    def choose_servers(
        self,
        replication: int,
        creating_server_id: Optional[str],
        datanodes: Dict[str, DataNode],
        block_size_gb: float,
        exclude: Sequence[str] = (),
        space_prefiltered: bool = False,
    ) -> List[str]:
        """Return up to ``replication`` distinct server ids for a new block.

        ``space_prefiltered`` tells the policy that ``exclude`` already
        contains every server without room for the block (the NameNode
        computes that in one vectorized pass), so the per-DataNode space
        scan can be skipped.
        """
        ...


class StockPlacementPolicy:
    """Default HDFS placement: local server, same rack, then remote racks."""

    def __init__(self, rng: Optional[RandomSource] = None) -> None:
        self._rng = rng or RandomSource(0)

    def choose_servers(
        self,
        replication: int,
        creating_server_id: Optional[str],
        datanodes: Dict[str, DataNode],
        block_size_gb: float,
        exclude: Sequence[str] = (),
        space_prefiltered: bool = False,
    ) -> List[str]:
        """Pick servers with the rack-aware stock rule."""
        if replication <= 0:
            raise ValueError("replication must be positive")
        excluded = set(exclude)
        # Candidates carry (server_id, rack) alongside the DataNode so the
        # inner filters below stay free of per-DataNode property calls; this
        # runs once per block creation.
        candidates = [
            (sid, dn.server.rack)
            for sid, dn in datanodes.items()
            if sid not in excluded
            and (space_prefiltered or dn.has_space_for(block_size_gb))
        ]
        if not candidates:
            return []

        chosen: List[str] = []
        chosen_racks: List[str] = []

        def pick(pool: List[tuple]) -> Optional[tuple]:
            pool = [entry for entry in pool if entry[0] not in chosen]
            if not pool:
                return None
            return self._rng.choice(pool)

        # Replica 1: the creating server when possible, otherwise random.
        first: Optional[tuple] = None
        if creating_server_id is not None and creating_server_id in datanodes:
            local = datanodes[creating_server_id]
            if creating_server_id not in excluded and (
                space_prefiltered or local.has_space_for(block_size_gb)
            ):
                first = (creating_server_id, local.server.rack)
        if first is None:
            first = pick(candidates)
        if first is None:
            return []
        chosen.append(first[0])
        chosen_racks.append(first[1])

        # Replica 2: same rack as the first, if any other server is there.
        if len(chosen) < replication:
            same_rack = [entry for entry in candidates if entry[1] == chosen_racks[0]]
            second = pick(same_rack) or pick(candidates)
            if second is not None:
                chosen.append(second[0])
                chosen_racks.append(second[1])

        # Remaining replicas: prefer racks not used yet.
        while len(chosen) < replication:
            remote = [entry for entry in candidates if entry[1] not in chosen_racks]
            nxt = pick(remote) or pick(candidates)
            if nxt is None:
                break
            chosen.append(nxt[0])
            chosen_racks.append(nxt[1])
        return chosen


class HistoryPlacementPolicy:
    """Algorithm 2 placement on top of the two-dimensional grid clustering."""

    def __init__(
        self,
        rng: Optional[RandomSource] = None,
        constraints: PlacementConstraints = PlacementConstraints(),
        rows: int = 3,
        columns: int = 3,
        block_size_gb: float = 0.25,
    ) -> None:
        self._rng = rng or RandomSource(0)
        self._constraints = constraints
        self._rows = rows
        self._columns = columns
        self._block_size_gb = block_size_gb
        self._placer: Optional[ReplicaPlacer] = None

    @property
    def grid(self) -> Optional[GridClustering]:
        """The current grid clustering (None before the first update)."""
        if self._placer is None:
            return None
        return self._placer.grid

    def update_clustering(self, stats: Sequence[TenantPlacementStats]) -> None:
        """(Re)build the grid from fresh tenant statistics.

        Space already consumed by previously placed replicas is carried over
        so the placer keeps respecting per-tenant quotas across refreshes.
        """
        grid = build_grid(stats, rows=self._rows, columns=self._columns)
        space_used = None
        if self._placer is not None:
            space_used = {
                tenant_id: self._placer.space_used_gb(tenant_id)
                for tenant_id in grid.stats_by_tenant
            }
        self._placer = ReplicaPlacer(
            grid,
            rng=self._rng,
            constraints=self._constraints,
            space_used_gb=space_used,
            block_size_gb=self._block_size_gb,
        )

    def choose_servers(
        self,
        replication: int,
        creating_server_id: Optional[str],
        datanodes: Dict[str, DataNode],
        block_size_gb: float,
        exclude: Sequence[str] = (),
        space_prefiltered: bool = False,
    ) -> List[str]:
        """Pick servers with Algorithm 2; falls back to nothing when unclustered."""
        if self._placer is None:
            raise RuntimeError(
                "HistoryPlacementPolicy.update_clustering must run before placement"
            )
        # Servers that are busy or out of space cannot receive a replica; the
        # placer must know this up front so it can pick alternatives that
        # still satisfy the diversity constraints.
        excluded = set(exclude)
        if not space_prefiltered:
            for server_id, datanode in datanodes.items():
                if not datanode.has_space_for(block_size_gb):
                    excluded.add(server_id)
        decision = self._placer.place_block(
            replication, creating_server_id, excluded_servers=excluded
        )
        return list(decision.server_ids)

    def release_space(self, tenant_id: str, gigabytes: float) -> None:
        """Return space to a tenant after a replica is destroyed or deleted."""
        if self._placer is not None:
            self._placer.release_space(tenant_id, gigabytes)
