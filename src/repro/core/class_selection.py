"""Algorithm 1: class selection for batch task scheduling.

Given the utilization classes produced by the clustering service, the class
selector decides which class (or combination of classes) should host a batch
job's tasks:

1. the job is typed short / medium / long from its last run;
2. its maximum concurrent resource demand is estimated from its DAG;
3. every class's headroom for that job type is weighted by a pre-determined
   type-dependent ranking (long jobs prefer constant classes, short jobs
   prefer unpredictable ones, medium jobs prefer periodic ones);
4. if at least one class can fit the whole job, one is picked with
   probability proportional to its weighted headroom; otherwise a set of
   classes that together fit the job is picked the same way; otherwise no
   class is selected and the job must wait.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.core.clustering import UtilizationClass
from repro.core.headroom import class_headroom_array
from repro.core.job_types import JobType
from repro.simulation.random import RandomSource
from repro.traces.utilization import UtilizationPattern


#: Default ranking weights W[job_type][pattern] (higher = more preferred).
#: Long jobs favour constant classes, short jobs favour unpredictable ones,
#: medium jobs favour periodic ones — exactly the ordering of Section 4.1.
DEFAULT_RANKING: Dict[JobType, Dict[UtilizationPattern, float]] = {
    JobType.LONG: {
        UtilizationPattern.CONSTANT: 3.0,
        UtilizationPattern.PERIODIC: 2.0,
        UtilizationPattern.UNPREDICTABLE: 1.0,
    },
    JobType.MEDIUM: {
        UtilizationPattern.PERIODIC: 3.0,
        UtilizationPattern.CONSTANT: 2.0,
        UtilizationPattern.UNPREDICTABLE: 1.0,
    },
    JobType.SHORT: {
        UtilizationPattern.UNPREDICTABLE: 3.0,
        UtilizationPattern.PERIODIC: 2.0,
        UtilizationPattern.CONSTANT: 1.0,
    },
}


@dataclass(frozen=True)
class RankingWeights:
    """Ranking weight matrix W indexed by job type and pattern."""

    weights: Mapping[JobType, Mapping[UtilizationPattern, float]] = field(
        default_factory=lambda: DEFAULT_RANKING
    )

    def weight(self, job_type: JobType, pattern: UtilizationPattern) -> float:
        """Weight for a (job type, pattern) pair; unknown pairs weigh 1."""
        return float(self.weights.get(job_type, {}).get(pattern, 1.0))


@dataclass
class ClassCapacity:
    """Scheduler-visible capacity information for one utilization class.

    Attributes:
        utilization_class: the class itself.
        total_capacity: total CPU capacity of the class's servers, in the
            scheduler's resource unit (e.g. containers or cores).
        current_utilization: most recent average CPU utilization (fraction)
            of the class's servers, reported via heartbeats.
    """

    utilization_class: UtilizationClass
    total_capacity: float
    current_utilization: float = 0.0

    def __post_init__(self) -> None:
        if self.total_capacity < 0:
            raise ValueError("total_capacity must be non-negative")
        if not 0.0 <= self.current_utilization <= 1.0:
            raise ValueError("current_utilization must be in [0, 1]")


class ClassCapacityMatrix:
    """Columnar view over a set of :class:`ClassCapacity` records.

    One row per class, in input order: total capacity, current utilization,
    and the class's historical average / peak utilizations, plus the pattern
    of each class (for ranking-weight lookups).  Algorithm 1's headroom and
    weight computations then run as array expressions over these columns
    instead of per-class Python loops.
    """

    __slots__ = (
        "class_ids",
        "patterns",
        "total_capacity",
        "current_utilization",
        "average_utilization",
        "peak_utilization",
    )

    def __init__(self, capacities: Sequence[ClassCapacity]) -> None:
        self.class_ids: List[str] = []
        self.patterns: List[UtilizationPattern] = []
        n = len(capacities)
        self.total_capacity = np.empty(n)
        self.current_utilization = np.empty(n)
        self.average_utilization = np.empty(n)
        self.peak_utilization = np.empty(n)
        for i, capacity in enumerate(capacities):
            cls = capacity.utilization_class
            self.class_ids.append(cls.class_id)
            self.patterns.append(cls.pattern)
            self.total_capacity[i] = capacity.total_capacity
            self.current_utilization[i] = capacity.current_utilization
            self.average_utilization[i] = cls.average_utilization
            self.peak_utilization[i] = cls.peak_utilization

    def __len__(self) -> int:
        return len(self.class_ids)

    def ranking_weights(
        self, ranking: RankingWeights, job_type: JobType
    ) -> np.ndarray:
        """Per-class ranking weight column for one job type."""
        return np.array(
            [ranking.weight(job_type, pattern) for pattern in self.patterns]
        )


#: Either form Algorithm 1 accepts: capacity records or their columnar view.
Capacities = Union[Sequence[ClassCapacity], ClassCapacityMatrix]


@dataclass
class ClassSelection:
    """Result of running Algorithm 1 for one job.

    Attributes:
        class_ids: selected class ids (empty when the job cannot be placed).
        job_type: the type the job was categorized as.
        required_capacity: the job's estimated maximum concurrent demand.
        single_class: True when one class fits the whole job.
    """

    class_ids: List[str]
    job_type: JobType
    required_capacity: float
    single_class: bool

    @property
    def scheduled(self) -> bool:
        """Whether any class could be selected."""
        return bool(self.class_ids)


class ClassSelector:
    """Implements Algorithm 1 over a set of class capacities."""

    def __init__(
        self,
        ranking: RankingWeights | None = None,
        rng: Optional[RandomSource] = None,
        reserve_fraction: float = 0.0,
    ) -> None:
        self._ranking = ranking or RankingWeights()
        self._rng = rng or RandomSource(0)
        if not 0.0 <= reserve_fraction < 1.0:
            raise ValueError("reserve_fraction must be in [0, 1)")
        self._reserve_fraction = reserve_fraction

    def _headroom_columns(
        self, job_type: JobType, matrix: ClassCapacityMatrix
    ) -> tuple[np.ndarray, np.ndarray]:
        """(absolute, weighted) headroom columns over the capacity matrix.

        One vectorized :func:`class_headroom_array` evaluation replaces the
        per-class :func:`class_headroom` loop; the products keep the scalar
        left-to-right order (``(fraction * capacity) * weight``) so every
        element is bit-identical.
        """
        fractions = class_headroom_array(
            job_type,
            matrix.average_utilization,
            matrix.peak_utilization,
            matrix.current_utilization,
            reserve_fraction=self._reserve_fraction,
        )
        absolute = fractions * matrix.total_capacity
        weighted = absolute * matrix.ranking_weights(self._ranking, job_type)
        return absolute, weighted

    @staticmethod
    def _as_matrix(capacities: Capacities) -> ClassCapacityMatrix:
        if isinstance(capacities, ClassCapacityMatrix):
            return capacities
        return ClassCapacityMatrix(capacities)

    def weighted_headrooms(
        self, job_type: JobType, capacities: Capacities
    ) -> List[float]:
        """Per-class headroom (in capacity units) scaled by the ranking weight."""
        _, weighted = self._headroom_columns(job_type, self._as_matrix(capacities))
        return weighted.tolist()

    def absolute_headrooms(
        self, job_type: JobType, capacities: Capacities
    ) -> List[float]:
        """Per-class headroom in capacity units, unweighted (used for fit)."""
        absolute, _ = self._headroom_columns(job_type, self._as_matrix(capacities))
        return absolute.tolist()

    def select(
        self,
        job_type: JobType,
        required_capacity: float,
        capacities: Capacities,
    ) -> ClassSelection:
        """Run Algorithm 1: pick the class(es) that will host the job."""
        if required_capacity < 0:
            raise ValueError("required_capacity must be non-negative")
        matrix = self._as_matrix(capacities)
        if not len(matrix):
            return ClassSelection([], job_type, required_capacity, False)

        absolute, weighted = self._headroom_columns(job_type, matrix)

        fitting = np.flatnonzero(absolute >= required_capacity)
        if len(fitting):
            chosen = int(fitting[self._rng.weighted_index(weighted[fitting])])
            return ClassSelection(
                [matrix.class_ids[chosen]],
                job_type,
                required_capacity,
                True,
            )

        # No single class fits: try a combination, picking classes one by one
        # with probability proportional to their weighted headroom until the
        # accumulated headroom covers the demand.  The loop consumes one
        # ``weighted_index`` draw per pick, draw for draw as before.
        headrooms = absolute.tolist()
        weighted_list = weighted.tolist()
        total_headroom = sum(headrooms)
        if total_headroom >= required_capacity and required_capacity > 0:
            remaining = list(range(len(matrix)))
            selected: List[int] = []
            accumulated = 0.0
            while remaining and accumulated < required_capacity:
                weights = [max(weighted_list[i], 1e-12) for i in remaining]
                pick = remaining[self._rng.weighted_index(weights)]
                selected.append(pick)
                accumulated += headrooms[pick]
                remaining.remove(pick)
            if accumulated >= required_capacity:
                return ClassSelection(
                    [matrix.class_ids[i] for i in selected],
                    job_type,
                    required_capacity,
                    False,
                )

        return ClassSelection([], job_type, required_capacity, False)
