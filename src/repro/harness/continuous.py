"""The ``continuous`` scenario kind: live traffic with windowed metrics.

Where the figure runners materialize one workload and report a terminal
payload, :class:`ContinuousRunner` drives a
:class:`~repro.jobs.scheduler_variants.HarvestingCluster` under a
:class:`~repro.harness.traffic.TrafficDriver` arrival process for
``epochs * epoch_seconds`` of simulated time and reports *per-epoch*
windowed metrics — p99 primary latency, harvest throughput, kill rate,
queue depth — as a :class:`~repro.harness.results.ContinuousResult`.

Cell grid: one cell per scheduler variant.  Each cell records the four
child seeds its serial forks resolve to (cluster, workload factory, traffic
process, latency model) and replays the *entire* continuous simulation from
them in :meth:`ContinuousRunner.run_cell`, so the epoch stream is
bit-identical whether cells run serially or on a process pool.  Epochs
within a cell are inherently sequential (epoch N's cluster state feeds
epoch N+1), which is why the variant — not the epoch — is the unit of
parallelism.

Kind-specific spec params (all reachable via ``repro run-scenario``
``--traffic/--epochs/--epoch-seconds`` or ``repro.api`` overrides):

* ``traffic`` — a :func:`~repro.harness.traffic.parse_traffic` spec string;
* ``epochs`` — number of metric windows (the horizon is their sum);
* ``epoch_seconds`` — window length in simulated seconds.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.harness.builders import build_testbed_tenants
from repro.harness.cells import Cell
from repro.harness.results import (
    ContinuousResult,
    EpochMetrics,
    VariantContinuousResult,
)
from repro.harness.runners import (
    _SCHEDULING_VARIANT_MODES,
    _bucket_mean,
    ScenarioRunner,
    _register,
)
from repro.harness.spec import ScenarioSpec
from repro.harness.traffic import EpochRecorder, parse_traffic
from repro.jobs.scheduler_variants import ClusterConfig, HarvestingCluster
from repro.jobs.tpcds import TpcdsWorkloadFactory
from repro.services.latency_model import LatencyModel
from repro.simulation.random import RandomSource

#: Default horizon: eight 10-minute windows.
DEFAULT_EPOCHS = 8
DEFAULT_EPOCH_SECONDS = 600.0
#: Default arrival process: one job every ~200s, open loop.
DEFAULT_TRAFFIC = "open:rate=0.005"


@_register
class ContinuousRunner(ScenarioRunner):
    """Continuous simulation under an arrival-process traffic driver.

    Cell grid: one cell per scheduler variant, each carrying the four child
    seeds its serial forks resolved to (cluster, workload factory, traffic,
    latency model).
    """

    kind = "continuous"
    SHARED_FORK_LABELS = ("testbed-dc9",)

    def _prepare(self) -> Dict[str, Any]:
        return {"tenants": build_testbed_tenants(self.spec.scale, self.rng)}

    @classmethod
    def _grid_cells(cls, spec: ScenarioSpec, fork_seed: Any) -> List[Cell]:
        cells: List[Cell] = []
        for name in spec.variants:
            cells.append(
                Cell(
                    index=len(cells),
                    key=name,
                    seeds=(
                        fork_seed(f"cluster-{name}"),
                        fork_seed("tpcds"),
                        fork_seed(f"traffic-{name}"),
                        fork_seed(f"latency-{name}"),
                    ),
                    coords={"variant": name},
                )
            )
        return cells

    def _enumerate_cells(self) -> List[Cell]:
        return self._grid_cells(self.spec, self.fork_seed)

    # -- execution ----------------------------------------------------------

    def run_cell(self, cell: Cell) -> VariantContinuousResult:
        name = cell.coord("variant")
        return _run_continuous_variant(
            name,
            self.ctx["tenants"],
            cell.seeds,
            traffic=str(self.spec.param("traffic", DEFAULT_TRAFFIC)),
            epochs=int(self.spec.param("epochs", DEFAULT_EPOCHS)),
            epoch_seconds=float(
                self.spec.param("epoch_seconds", DEFAULT_EPOCH_SECONDS)
            ),
        )

    def merge(
        self, cells: Sequence[Cell], partials: Sequence[Any]
    ) -> ContinuousResult:
        epochs = int(self.spec.param("epochs", DEFAULT_EPOCHS))
        epoch_seconds = float(
            self.spec.param("epoch_seconds", DEFAULT_EPOCH_SECONDS)
        )
        variants: Dict[str, VariantContinuousResult] = {}
        for outcome in partials:
            variants[outcome.variant] = outcome
            p99 = self.metrics.distribution(
                f"continuous.{outcome.variant}.p99_ms"
            )
            for epoch in outcome.epochs:
                p99.add(epoch.p99_primary_ms)
            self.metrics.counter(
                f"continuous.{outcome.variant}.jobs_completed"
            ).increment(outcome.jobs_completed)
            self.metrics.counter(
                f"continuous.{outcome.variant}.tasks_killed"
            ).increment(outcome.tasks_killed)
        return ContinuousResult(
            traffic=str(self.spec.param("traffic", DEFAULT_TRAFFIC)),
            epoch_seconds=epoch_seconds,
            num_epochs=epochs,
            variants=variants,
        )


def _run_continuous_variant(
    name: str,
    tenants,
    seeds: Tuple[int, ...],
    *,
    traffic: str,
    epochs: int,
    epoch_seconds: float,
) -> VariantContinuousResult:
    """One variant's full continuous run, purely from its recorded seeds."""
    mode = _SCHEDULING_VARIANT_MODES[name]
    cluster_rng, tpcds_rng, traffic_rng, latency_rng = (
        RandomSource(seed) for seed in seeds
    )
    horizon = epochs * epoch_seconds
    cluster = HarvestingCluster(
        tenants,
        config=ClusterConfig(mode=mode, record_server_series=True),
        rng=cluster_rng,
    )
    factory = TpcdsWorkloadFactory(tpcds_rng, duration_scale=1.0, width_scale=0.35)
    driver = parse_traffic(traffic)
    driver.attach(cluster, factory, horizon, traffic_rng)
    recorder = EpochRecorder(cluster, driver, epoch_seconds, epochs)
    recorder.install()
    cluster.run(horizon)

    per_epoch_p99 = _epoch_p99_latency(
        cluster, latency_rng, epochs, epoch_seconds
    )
    metrics: List[EpochMetrics] = []
    previous = {
        "jobs_submitted": 0,
        "jobs_completed": 0,
        "tasks_completed": 0,
        "tasks_killed": 0,
    }
    for index, snapshot in enumerate(recorder.snapshots):
        metrics.append(
            EpochMetrics(
                index=index,
                start_seconds=index * epoch_seconds,
                end_seconds=snapshot["time"],
                jobs_submitted=snapshot["jobs_submitted"]
                - previous["jobs_submitted"],
                jobs_completed=snapshot["jobs_completed"]
                - previous["jobs_completed"],
                tasks_completed=snapshot["tasks_completed"]
                - previous["tasks_completed"],
                tasks_killed=snapshot["tasks_killed"] - previous["tasks_killed"],
                queue_depth=snapshot["jobs_submitted"]
                - snapshot["jobs_completed"],
                p99_primary_ms=per_epoch_p99[index],
            )
        )
        previous = snapshot
    return VariantContinuousResult(variant=name, epochs=metrics)


def _epoch_p99_latency(
    cluster: HarvestingCluster,
    latency_rng: RandomSource,
    epochs: int,
    epoch_seconds: float,
) -> List[float]:
    """p99 of the per-minute fleet-mean primary latency, per epoch window.

    The same evaluation the scheduling testbed performs — bucket the
    recorded per-server heartbeat matrices into minutes, one latency-matrix
    evaluation, fleet mean per minute — then each minute sample lands in the
    epoch its minute *starts* in and every window reports the 99th
    percentile of its samples (0.0 for windows without a complete minute).
    The jitter draws are consumed in minute-major order exactly once, so
    the per-epoch split costs no extra randomness.
    """
    per_epoch: List[List[float]] = [[] for _ in range(epochs)]
    series = cluster.server_series()
    if len(series.times):
        latency_model = LatencyModel(
            rng=latency_rng,
            reserve_fraction=cluster.config.reserve_cpu_fraction,
        )
        buckets = np.floor(series.times / 60.0).astype(int)
        minute_starts = np.unique(buckets) * 60.0
        secondary = _bucket_mean(series.times, series.secondary_cpu, 60.0)
        primary = _bucket_mean(series.times, series.primary_cpu, 60.0)
        per_minute = latency_model.p99_latency_ms_array(
            np.minimum(1.0, primary), secondary
        )
        for start, row in zip(minute_starts, per_minute):
            index = min(int(start // epoch_seconds), epochs - 1)
            per_epoch[index].append(float(np.mean(row)))
    return [
        float(np.percentile(np.asarray(samples), 99.0)) if samples else 0.0
        for samples in per_epoch
    ]
