"""Tests for the rate-limited re-replication manager."""

from __future__ import annotations

import pytest

from repro.storage.replication import ReplicationManager


class TestQueue:
    def test_enqueue_is_idempotent(self):
        manager = ReplicationManager()
        manager.enqueue("b1")
        manager.enqueue("b1")
        assert manager.pending_count == 1

    def test_discard(self):
        manager = ReplicationManager()
        manager.enqueue("b1")
        manager.enqueue("b2")
        manager.discard("b1")
        assert manager.pending_count == 1
        manager.discard("missing")
        assert manager.pending_count == 1

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            ReplicationManager(blocks_per_hour_per_server=0.0)


class TestRateLimit:
    def test_budget_accumulates_with_time_and_servers(self):
        manager = ReplicationManager(blocks_per_hour_per_server=30.0)
        for i in range(100):
            manager.enqueue(f"b{i}")
        # After six minutes with 10 healthy servers: 30 * 10 * 0.1 = 30 blocks.
        drained = manager.drain(360.0, healthy_servers=10)
        assert len(drained) == 30
        assert manager.pending_count == 70

    def test_no_budget_without_elapsed_time(self):
        manager = ReplicationManager()
        manager.enqueue("b1")
        assert manager.drain(0.0, healthy_servers=10) == []

    def test_no_drain_without_healthy_servers(self):
        manager = ReplicationManager()
        manager.enqueue("b1")
        assert manager.drain(3600.0, healthy_servers=0) == []

    def test_budget_capped_at_one_hour_worth(self):
        manager = ReplicationManager(blocks_per_hour_per_server=30.0)
        for i in range(1000):
            manager.enqueue(f"b{i}")
        # A very long idle period must not bank an unbounded burst.
        drained = manager.drain(100 * 3600.0, healthy_servers=5)
        assert len(drained) == 150

    def test_drain_order_is_fifo(self):
        manager = ReplicationManager(blocks_per_hour_per_server=3600.0)
        manager.enqueue("first")
        manager.enqueue("second")
        drained = manager.drain(3600.0, healthy_servers=1)
        assert drained[:2] == ["first", "second"]

    def test_credit_consumed_by_drain(self):
        manager = ReplicationManager(blocks_per_hour_per_server=30.0)
        for i in range(60):
            manager.enqueue(f"b{i}")
        first = manager.drain(3600.0, healthy_servers=1)
        assert len(first) == 30
        # No time has passed since the first drain: no extra budget.
        second = manager.drain(3600.0, healthy_servers=1)
        assert second == []
