"""Tests for the primary-tenant latency model and service wrapper."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.services.latency_model import LatencyModel, LatencyModelConfig
from repro.services.primary_tenant import PrimaryTenantService
from repro.simulation.random import RandomSource
from repro.traces.utilization import UtilizationPattern, UtilizationTrace


class TestLatencyModelConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyModelConfig(baseline_ms=0.0)
        with pytest.raises(ValueError):
            LatencyModelConfig(baseline_ms=400.0, max_latency_ms=300.0)


class TestLatencyModel:
    def test_baseline_matches_paper_range(self):
        """No-harvesting p99 averages 369-406 ms in the paper."""
        model = LatencyModel(rng=RandomSource(1))
        samples = [model.p99_latency_ms(0.3, 0.0) for _ in range(500)]
        assert 360.0 < float(np.mean(samples)) < 420.0

    def test_latency_without_interference_is_near_baseline(self):
        model = LatencyModel(rng=RandomSource(2))
        quiet = model.p99_latency_ms(0.4, 0.0)
        assert abs(quiet - model.config.baseline_ms) < 60.0

    def test_secondary_within_free_capacity_adds_little(self):
        model = LatencyModel(rng=RandomSource(3))
        # Primary at 30%, secondary at 30%: the reserve (33%) is untouched.
        values = [model.p99_latency_ms(0.3, 0.3) for _ in range(100)]
        assert float(np.mean(values)) < model.config.baseline_ms + 80.0

    def test_reserve_intrusion_increases_latency(self):
        model = LatencyModel(rng=RandomSource(4))
        polite = np.mean([model.p99_latency_ms(0.3, 0.3) for _ in range(100)])
        intrusive = np.mean([model.p99_latency_ms(0.3, 0.6) for _ in range(100)])
        assert intrusive > polite

    def test_overload_dominates(self):
        model = LatencyModel(rng=RandomSource(5))
        overloaded = np.mean([model.p99_latency_ms(0.7, 0.6) for _ in range(100)])
        fine = np.mean([model.p99_latency_ms(0.7, 0.0) for _ in range(100)])
        assert overloaded > fine + 300.0

    def test_latency_capped(self):
        model = LatencyModel(rng=RandomSource(6))
        assert model.p99_latency_ms(1.0, 5.0) <= model.config.max_latency_ms

    def test_validation(self):
        model = LatencyModel()
        with pytest.raises(ValueError):
            model.p99_latency_ms(1.5, 0.0)
        with pytest.raises(ValueError):
            model.p99_latency_ms(0.5, -1.0)
        with pytest.raises(ValueError):
            LatencyModel(reserve_fraction=1.0)

    @given(
        st.floats(min_value=0, max_value=1),
        st.floats(min_value=0, max_value=2),
        st.floats(min_value=0, max_value=1),
    )
    @settings(max_examples=100, deadline=None)
    def test_latency_positive_bounded_and_monotone_in_secondary(
        self, primary, secondary, io
    ):
        model = LatencyModel(rng=RandomSource(7))
        latency = model.p99_latency_ms(primary, secondary, io)
        assert 0.0 < latency <= model.config.max_latency_ms


class TestPrimaryTenantService:
    def make_service(self, utilization: float = 0.4) -> PrimaryTenantService:
        trace = UtilizationTrace(
            np.full(100, utilization), UtilizationPattern.CONSTANT
        )
        return PrimaryTenantService(
            "s0", trace, LatencyModel(rng=RandomSource(8))
        )

    def test_observe_records_time_series(self):
        service = self.make_service()
        service.observe(60.0, 0.0)
        service.observe(120.0, 0.5)
        assert service.latency_series.count == 2
        assert service.average_p99_ms() > 0.0
        assert service.max_p99_ms() >= service.average_p99_ms()

    def test_traffic_scale_amplifies_utilization(self):
        trace = UtilizationTrace(np.full(10, 0.4), UtilizationPattern.CONSTANT)
        scaled = PrimaryTenantService("s", trace, traffic_scale=2.0)
        assert scaled.utilization_at(0.0) == pytest.approx(0.8)
        with pytest.raises(ValueError):
            PrimaryTenantService("s", trace, traffic_scale=0.0)


class TestLatencyModelArray:
    def test_matches_scalar_stream_exactly(self):
        scalar_model = LatencyModel(rng=RandomSource(11))
        array_model = LatencyModel(rng=RandomSource(11))
        primary = np.array([0.1, 0.4, 0.7, 0.9, 0.0, 0.55])
        secondary = np.array([0.0, 0.2, 0.3, 0.5, 0.1, 0.0])
        io = np.array([0.0, 0.0, 0.4, 0.1, 0.0, 1.0])
        scalar = [
            scalar_model.p99_latency_ms(float(p), float(s), float(i))
            for p, s, i in zip(primary, secondary, io)
        ]
        batch = array_model.p99_latency_ms_array(primary, secondary, io)
        assert batch.tolist() == scalar

    def test_matches_scalar_in_row_major_order_2d(self):
        scalar_model = LatencyModel(rng=RandomSource(12))
        array_model = LatencyModel(rng=RandomSource(12))
        primary = np.array([[0.1, 0.8], [0.6, 0.3]])
        secondary = np.array([[0.2, 0.4], [0.0, 0.9]])
        scalar = [
            [
                scalar_model.p99_latency_ms(float(p), float(s))
                for p, s in zip(prow, srow)
            ]
            for prow, srow in zip(primary, secondary)
        ]
        batch = array_model.p99_latency_ms_array(primary, secondary)
        assert batch.tolist() == scalar

    def test_scalar_secondary_broadcasts(self):
        model = LatencyModel(rng=RandomSource(13))
        batch = model.p99_latency_ms_array(np.array([0.1, 0.2, 0.3]), 0.0)
        assert batch.shape == (3,)

    def test_validation(self):
        model = LatencyModel(rng=RandomSource(14))
        with pytest.raises(ValueError):
            model.p99_latency_ms_array(np.array([1.5]), 0.0)
        with pytest.raises(ValueError):
            model.p99_latency_ms_array(np.array([0.5]), -0.1)


class TestPrimaryTenantServiceBatch:
    def build(self, traffic_scale: float = 1.0) -> PrimaryTenantService:
        trace = UtilizationTrace(
            np.array([0.2, 0.6, 0.9, 0.4]), UtilizationPattern.PERIODIC
        )
        return PrimaryTenantService(
            "srv", trace, LatencyModel(rng=RandomSource(21)), traffic_scale
        )

    def test_utilization_batch_matches_scalar(self):
        service = self.build(traffic_scale=1.3)
        times = [0.0, 60.0, 120.0, 360.0, 480.0, 13.0 * 120.0]
        batch = service.utilization_at_batch(times)
        assert batch.tolist() == [service.utilization_at(t) for t in times]

    def test_utilization_batch_rejects_negative_times(self):
        with pytest.raises(ValueError):
            self.build().utilization_at_batch([-1.0])

    def test_observe_batch_matches_scalar_observe(self):
        batch_service = self.build()
        scalar_service = PrimaryTenantService(
            "srv", batch_service.trace, LatencyModel(rng=RandomSource(21))
        )
        times = np.array([60.0, 120.0, 180.0, 240.0])
        secondary = np.array([0.0, 0.1, 0.3, 0.2])
        batch = batch_service.observe_batch(times, secondary)
        scalar = [
            scalar_service.observe(float(t), float(s))
            for t, s in zip(times, secondary)
        ]
        assert batch.tolist() == scalar
        assert batch_service.latency_series.count == 4
        assert batch_service.average_p99_ms() == scalar_service.average_p99_ms()
