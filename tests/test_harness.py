"""Tests for the scenario harness: registry, runners, and determinism."""

from __future__ import annotations

import pytest

from repro.experiments.config import TINY_SCALE
from repro.harness import (
    ExperimentHarness,
    ScenarioSpec,
    get_scenario,
    iter_scenarios,
    register_scenario,
    run_scenario,
    scenario_names,
)
from repro.harness.results import (
    AvailabilityResult,
    DurabilityResult,
    SchedulingSweepResult,
)
from repro.simulation.engine import SimulationEngine


def tiny_availability_spec(**overrides) -> ScenarioSpec:
    spec = ScenarioSpec(
        name="tiny-availability",
        kind="availability",
        variants=("HDFS-Stock", "HDFS-H"),
        replication_levels=(3,),
        utilization_levels=(0.4, 0.7),
        max_tenants=12,
        servers_per_tenant_limit=2,
        scale=TINY_SCALE,
        params={"accesses_per_point": 200},
    )
    return spec.with_overrides(**overrides) if overrides else spec


class TestRegistry:
    def test_default_scenarios_registered(self):
        names = scenario_names()
        for expected in (
            "fig15-durability",
            "fig16-availability",
            "fig13-dc9-sweep",
            "fig14-fleet-improvements",
            "fig10-11-scheduling-testbed",
            "fig12-storage-testbed",
        ):
            assert expected in names

    def test_iter_matches_names(self):
        assert [spec.name for spec in iter_scenarios()] == scenario_names()

    def test_duplicate_registration_rejected(self):
        spec = get_scenario("fig15-durability")
        with pytest.raises(ValueError):
            register_scenario(spec)

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            get_scenario("no-such-scenario")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="bad", kind="not-a-kind")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="", kind="durability")

    def test_with_overrides_returns_modified_copy(self):
        spec = get_scenario("fig15-durability")
        tiny = spec.with_overrides(scale=TINY_SCALE, seed=9)
        assert tiny.scale is TINY_SCALE and tiny.seed == 9
        assert spec.scale is not TINY_SCALE  # original untouched


class TestRunScenario:
    def test_run_by_registered_name_shape(self):
        # The registered fig15 spec at QUICK scale is too slow for a unit
        # test, so run a scaled-down copy through the same entry point.
        spec = get_scenario("fig15-durability").with_overrides(
            name="tiny-durability",
            scale=TINY_SCALE,
            max_tenants=12,
            servers_per_tenant_limit=2,
        )
        result = run_scenario(spec, seed=3)
        assert isinstance(result, DurabilityResult)
        assert set(result.results) == {
            ("HDFS-Stock", 3),
            ("HDFS-H", 3),
            ("HDFS-Stock", 4),
            ("HDFS-H", 4),
        }

    def test_availability_spec_round_trip(self):
        result = run_scenario(tiny_availability_spec(), seed=3)
        assert isinstance(result, AvailabilityResult)
        assert len(result.points) == 2 * 2  # 2 utilizations x 2 variants

    def test_scheduling_sweep_spec(self):
        spec = ScenarioSpec(
            name="tiny-sweep",
            kind="scheduling_sweep",
            utilization_levels=(0.3,),
            max_tenants=8,
            servers_per_tenant_limit=2,
            scale=TINY_SCALE,
        )
        result = run_scenario(spec, seed=3)
        assert isinstance(result, SchedulingSweepResult)
        assert len(result.points) == 1

    def test_invalid_scenario_params_surface(self):
        with pytest.raises(ValueError):
            run_scenario(
                tiny_availability_spec(params={"accesses_per_point": 0}), seed=3
            )


class TestDeterminism:
    """A fixed seed must reproduce identical results and metric snapshots."""

    def test_two_harness_runs_produce_identical_metrics(self):
        spec = tiny_availability_spec()
        first = ExperimentHarness(spec, seed=5)
        second = ExperimentHarness(spec, seed=5)
        result_a = first.run()
        result_b = second.run()
        assert first.metrics.snapshot() == second.metrics.snapshot()
        assert [
            (p.variant, p.replication, p.target_utilization, p.failed_accesses)
            for p in result_a.points
        ] == [
            (p.variant, p.replication, p.target_utilization, p.failed_accesses)
            for p in result_b.points
        ]

    def test_different_seeds_change_the_metrics(self):
        spec = tiny_availability_spec()
        first = ExperimentHarness(spec, seed=5)
        second = ExperimentHarness(spec, seed=6)
        first.run()
        second.run()
        # The counter names are identical; at least the sampled access times
        # (and typically the failure counts) differ.
        assert set(first.metrics.snapshot()) == set(second.metrics.snapshot())

    def test_durability_runs_reproduce_block_loss_exactly(self):
        spec = ScenarioSpec(
            name="tiny-durability-det",
            kind="durability",
            variants=("HDFS-Stock", "HDFS-H"),
            replication_levels=(3,),
            max_tenants=10,
            servers_per_tenant_limit=2,
            scale=TINY_SCALE,
        )
        harness_a = ExperimentHarness(spec, seed=11)
        harness_b = ExperimentHarness(spec, seed=11)
        result_a = harness_a.run()
        result_b = harness_b.run()
        for key, outcome in result_a.results.items():
            twin = result_b.results[key]
            assert (outcome.blocks_created, outcome.blocks_lost) == (
                twin.blocks_created,
                twin.blocks_lost,
            )
        assert harness_a.metrics.snapshot() == harness_b.metrics.snapshot()


class TestEngineOrderingPin:
    """Regression pin: same-time events fire in (priority, insertion) order.

    The durability runner relies on this to replay reimages before the
    re-replication round scheduled at the same instant.
    """

    def test_priority_then_insertion_at_equal_times(self):
        engine = SimulationEngine()
        order: list[str] = []
        engine.schedule_at(10.0, lambda e: order.append("b0"), priority=1, name="b0")
        engine.schedule_at(10.0, lambda e: order.append("a0"), priority=0, name="a0")
        engine.schedule_at(10.0, lambda e: order.append("b1"), priority=1, name="b1")
        engine.schedule_at(10.0, lambda e: order.append("a1"), priority=0, name="a1")
        engine.schedule_at(5.0, lambda e: order.append("early"), priority=9)
        engine.run()
        assert order == ["early", "a0", "a1", "b0", "b1"]

    def test_periodic_and_one_shot_interleave_deterministically(self):
        def run_once() -> list[tuple[str, float]]:
            engine = SimulationEngine()
            order: list[tuple[str, float]] = []
            engine.schedule_periodic(
                10.0, lambda e: order.append(("tick", e.now)), priority=1
            )
            for t in (10.0, 20.0, 30.0):
                engine.schedule_at(
                    t, lambda e: order.append(("event", e.now)), priority=0
                )
            engine.run_until(30.0)
            return order

        first = run_once()
        assert first == run_once()
        # Priority 0 one-shots precede the periodic tick at every shared time.
        assert first == [
            ("event", 10.0),
            ("tick", 10.0),
            ("event", 20.0),
            ("tick", 20.0),
            ("event", 30.0),
            ("tick", 30.0),
        ]
