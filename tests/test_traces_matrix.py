"""Tests for the vectorized trace matrix and the NameNode batch access path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.random import RandomSource
from repro.storage.datanode import DataNode
from repro.storage.namenode import AccessResult, NameNode
from repro.storage.placement_policies import StockPlacementPolicy
from repro.traces.datacenter import PrimaryTenant, Server
from repro.traces.matrix import TraceMatrix
from repro.traces.utilization import (
    SAMPLE_INTERVAL_SECONDS,
    UtilizationPattern,
    UtilizationTrace,
)


def make_tenant(
    tenant_id: str,
    values,
    num_servers: int = 2,
    traced: bool = True,
) -> PrimaryTenant:
    tenant = PrimaryTenant(
        tenant_id=tenant_id,
        environment=f"env-{tenant_id}",
        machine_function="mf",
        trace=UtilizationTrace(
            np.asarray(values, dtype=float), UtilizationPattern.CONSTANT
        )
        if traced
        else None,
        pattern=UtilizationPattern.CONSTANT,
    )
    for index in range(num_servers):
        tenant.servers.append(
            Server(
                server_id=f"{tenant_id}-s{index}",
                tenant_id=tenant_id,
                rack=f"rack-{index}",
                harvestable_disk_gb=64.0,
            )
        )
    return tenant


@pytest.fixture
def tenants() -> list[PrimaryTenant]:
    return [
        make_tenant("a", [0.1, 0.9, 0.5, 0.3]),
        make_tenant("b", [0.8, 0.2]),  # shorter trace: wraps on its own length
        make_tenant("c", [0.0], traced=False),
    ]


class TestConstruction:
    def test_shape_and_lookup(self, tenants):
        matrix = TraceMatrix(tenants)
        assert matrix.num_tenants == 3
        assert matrix.num_samples == 4  # padded to the longest trace
        assert matrix.tenant_ids == ["a", "b", "c"]
        assert matrix.row_of_tenant("b") == 1
        assert matrix.row_of_server("a-s1") == 0
        assert matrix.has_tenant("c") and not matrix.has_tenant("zz")

    def test_empty_and_duplicate_rejected(self, tenants):
        with pytest.raises(ValueError):
            TraceMatrix([])
        with pytest.raises(ValueError):
            TraceMatrix([tenants[0], tenants[0]])

    def test_negative_time_rejected(self, tenants):
        with pytest.raises(ValueError):
            TraceMatrix(tenants).utilization_at(-1.0)


class TestQueries:
    def test_matches_scalar_path_including_wraparound(self, tenants):
        matrix = TraceMatrix(tenants)
        times = [0.0, 119.0, 120.0, 500.0, 7 * SAMPLE_INTERVAL_SECONDS + 3.0]
        for t in times:
            column = matrix.utilization_at(t)
            for row, tenant in enumerate(tenants):
                expected = tenant.trace.value_at(t) if tenant.trace is not None else 0.0
                assert column[row] == pytest.approx(expected)

    def test_paired_utilization_broadcasts(self, tenants):
        matrix = TraceMatrix(tenants)
        rows = np.array([[0, 1], [1, 0]])
        times = np.array([[0.0], [3 * SAMPLE_INTERVAL_SECONDS]])
        out = matrix.utilization(rows, times)
        assert out.shape == (2, 2)
        assert out[0, 0] == pytest.approx(0.1)  # tenant a at t=0
        assert out[0, 1] == pytest.approx(0.8)  # tenant b at t=0
        # tenant b wraps at its own length (2 samples): index 3 % 2 == 1.
        assert out[1, 0] == pytest.approx(0.2)
        assert out[1, 1] == pytest.approx(0.3)

    def test_busy_mask_and_servers(self, tenants):
        matrix = TraceMatrix(tenants)
        mask = matrix.busy_mask(SAMPLE_INTERVAL_SECONDS, threshold=0.5)
        # At sample 1: a=0.9 (busy), b=0.2, c has no trace (never busy).
        assert list(mask) == [True, False, False]
        assert set(matrix.busy_servers(SAMPLE_INTERVAL_SECONDS, 0.5)) == {
            "a-s0",
            "a-s1",
        }

    def test_busy_fraction(self, tenants):
        matrix = TraceMatrix(tenants)
        fractions = matrix.busy_fraction(
            np.array([0.0, SAMPLE_INTERVAL_SECONDS]), threshold=0.5
        )
        assert fractions[0] == pytest.approx(1 / 3)  # only b (0.8) at t=0
        assert fractions[1] == pytest.approx(1 / 3)  # only a (0.9) at sample 1

    def test_mean_utilization_weights_validated(self, tenants):
        matrix = TraceMatrix(tenants)
        assert 0.0 <= matrix.mean_utilization() <= 1.0
        with pytest.raises(ValueError):
            matrix.mean_utilization(weights=[1.0])
        with pytest.raises(ValueError):
            matrix.mean_utilization(weights=[0.0, 0.0, 0.0])


class TestNameNodeBatchAccess:
    def build_namenode(self, utilizations: dict[str, float]) -> NameNode:
        tenants = [
            make_tenant(tid, [util] * 4, num_servers=3)
            for tid, util in utilizations.items()
        ]
        datanodes = [
            DataNode(server=s, tenant=t, primary_aware=True)
            for t in tenants
            for s in t.servers
        ]
        return NameNode(
            datanodes,
            StockPlacementPolicy(rng=RandomSource(1)),
            primary_aware=True,
            rng=RandomSource(2),
        )

    def test_batch_matches_scalar_access(self):
        namenode = self.build_namenode(
            {"idle": 0.1, "busy": 0.95, "medium": 0.4, "other": 0.2}
        )
        block_ids = []
        for _ in range(20):
            created = namenode.create_block(0.0)
            if created.block is not None:
                block_ids.append(created.block.block_id)
        assert block_ids

        rng = RandomSource(7)
        sampled = [rng.choice(block_ids) for _ in range(200)]
        times = np.array([rng.uniform(0.0, 4 * 120.0) for _ in range(200)])

        scalar = [namenode.access_block(b, t) for b, t in zip(sampled, times)]
        codes = namenode.check_accesses(sampled, times)
        batch = [NameNode.ACCESS_CODES[c] for c in codes]
        assert batch == scalar

    def test_batch_counts_metrics_like_scalar(self):
        scalar_nn = self.build_namenode({"idle": 0.1, "busy": 0.95})
        batch_nn = self.build_namenode({"idle": 0.1, "busy": 0.95})
        blocks_scalar, blocks_batch = [], []
        for _ in range(10):
            a = scalar_nn.create_block(0.0)
            b = batch_nn.create_block(0.0)
            if a.block is not None:
                blocks_scalar.append(a.block.block_id)
            if b.block is not None:
                blocks_batch.append(b.block.block_id)
        assert blocks_scalar == blocks_batch

        times = np.linspace(0.0, 400.0, 50)
        sampled = [blocks_scalar[i % len(blocks_scalar)] for i in range(50)]
        for b, t in zip(sampled, times):
            scalar_nn.access_block(b, t)
        batch_nn.check_accesses(sampled, times)
        for counter in ("accesses_served", "accesses_failed", "accesses_lost_block"):
            assert scalar_nn.metrics.counter_value(
                counter
            ) == batch_nn.metrics.counter_value(counter)

    def test_lost_blocks_reported(self):
        namenode = self.build_namenode({"idle": 0.1, "other": 0.2})
        created = namenode.create_block(0.0)
        block = created.block
        for server_id in list(block.servers_with_healthy_replicas()):
            namenode.handle_reimage(server_id, 1.0)
        codes = namenode.check_accesses([block.block_id, block.block_id], [2.0, 3.0])
        assert [NameNode.ACCESS_CODES[c] for c in codes] == [
            AccessResult.LOST,
            AccessResult.LOST,
        ]

    def test_unknown_block_raises(self):
        namenode = self.build_namenode({"idle": 0.1})
        with pytest.raises(KeyError):
            namenode.check_accesses(["missing"], [0.0])

    def test_length_mismatch_rejected(self):
        namenode = self.build_namenode({"idle": 0.1})
        with pytest.raises(ValueError):
            namenode.check_accesses(["x"], [0.0, 1.0])

    def test_empty_batch(self):
        namenode = self.build_namenode({"idle": 0.1})
        assert len(namenode.check_accesses([], [])) == 0
