"""Job arrival streams.

The testbed submits the 52 TPC-DS queries with Poisson inter-arrival times
(mean 300 seconds).  The workload generator produces the corresponding
arrival schedule, optionally repeating the query set so longer simulations
see recurring jobs (which is what lets the history-based typing work).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.jobs.dag import JobDag
from repro.jobs.tpcds import TpcdsWorkloadFactory
from repro.simulation.random import RandomSource
from repro.workload.distributions import Distribution, Exponential


@dataclass(frozen=True)
class JobArrival:
    """One job arrival: which DAG arrives and when."""

    time: float
    dag: JobDag


class WorkloadGenerator:
    """Poisson arrival stream over a fixed set of query DAGs."""

    def __init__(
        self,
        factory: Optional[TpcdsWorkloadFactory] = None,
        mean_interarrival_seconds: float = 300.0,
        rng: Optional[RandomSource] = None,
    ) -> None:
        if mean_interarrival_seconds <= 0:
            raise ValueError("mean_interarrival_seconds must be positive")
        self._factory = factory or TpcdsWorkloadFactory()
        self._mean_interarrival = mean_interarrival_seconds
        # The gap distribution as a named workload distribution; sampling
        # it is draw-identical to the inline ``rng.exponential`` calls.
        self._interarrival: Distribution = Exponential(mean_interarrival_seconds)
        self._rng = rng or RandomSource(11)

    @property
    def mean_interarrival_seconds(self) -> float:
        """Mean gap between consecutive job arrivals."""
        return self._mean_interarrival

    def arrivals(self, duration_seconds: float) -> List[JobArrival]:
        """Arrival schedule covering ``duration_seconds`` of simulated time.

        Queries are drawn uniformly at random (with replacement) from the
        52-query set, so popular queries recur and accumulate history.
        """
        if duration_seconds <= 0:
            raise ValueError("duration_seconds must be positive")
        queries = self._factory.all_queries()
        arrivals: List[JobArrival] = []
        time = 0.0
        while True:
            time += self._interarrival.sample(self._rng)
            if time >= duration_seconds:
                break
            arrivals.append(JobArrival(time=time, dag=self._rng.choice(queries)))
        return arrivals

    def one_pass(self, start_time: float = 0.0) -> List[JobArrival]:
        """A single pass over all 52 queries with Poisson gaps.

        Mirrors the five-hour testbed experiments where each query runs at
        least once.
        """
        arrivals: List[JobArrival] = []
        time = start_time
        for dag in self._rng.shuffle(self._factory.all_queries()):
            time += self._interarrival.sample(self._rng)
            arrivals.append(JobArrival(time=time, dag=dag))
        return arrivals
