"""Shared scenario harness for the paper's evaluation experiments.

Every figure in the evaluation is one simulator instantiated under a
different scenario.  This package factors the pipeline every driver used to
hand-roll — fleet build, trace scaling, grid clustering, variant loop,
metric collection — into three pieces:

* :class:`~repro.harness.spec.ScenarioSpec` — a declarative description of a
  scenario (datacenter, scale, tenant trimming, utilization levels, policy
  variants), plus a registry so scenarios can be listed and run by name
  (``repro run-scenario fig15-durability``);
* :class:`~repro.harness.harness.ExperimentHarness` — builds the datacenter
  once per scenario, forks seeded random streams per variant, drives all
  time-stepped logic through :class:`repro.simulation.engine.SimulationEngine`,
  and emits headline numbers through a
  :class:`repro.simulation.metrics.MetricRegistry`;
* the per-kind runners in :mod:`repro.harness.runners`, which share the
  fleet/scaling/NameNode builders in :mod:`repro.harness.builders` and the
  vectorized :class:`repro.traces.matrix.TraceMatrix` substrate.

The legacy ``repro.experiments.run_*`` entry points survive as thin wrappers
that assemble a spec and hand it to the harness.
"""

from repro.harness.cells import Cell, CellTiming
from repro.harness.spec import (
    ScenarioSpec,
    get_scenario,
    iter_scenarios,
    register_scenario,
    scenario_names,
)
from repro.harness.harness import ExperimentHarness, cells_from_spec, run_scenario
from repro.harness.snapshot import (
    CheckpointPause,
    ContextSnapshot,
    RunCheckpoint,
    SnapshotError,
    deserialize_snapshot,
    restore_runner,
    serialize_snapshot,
    snapshot_digest,
    snapshot_runner,
)
from repro.harness import continuous as _continuous  # registers the kind
from repro.harness import scenarios as _scenarios  # registers the defaults

del _continuous  # imported for its @_register side effect only

_scenarios.register_default_scenarios()

__all__ = [
    "Cell",
    "CellTiming",
    "CheckpointPause",
    "ContextSnapshot",
    "RunCheckpoint",
    "ScenarioSpec",
    "SnapshotError",
    "ExperimentHarness",
    "cells_from_spec",
    "deserialize_snapshot",
    "restore_runner",
    "run_scenario",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "iter_scenarios",
    "serialize_snapshot",
    "snapshot_digest",
    "snapshot_runner",
]
