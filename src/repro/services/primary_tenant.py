"""Trace-driven primary-tenant service running on the testbed servers.

The testbed directs traffic to a Lucene instance on every server so that its
CPU utilization reproduces the utilization of 21 primary tenants from DC-9
(13 periodic, 3 constant, 5 unpredictable), scaled down to 102 servers
(Section 6.1).  This class couples a server's utilization trace with the
latency model and records the per-minute p99 samples the figures plot.
"""

from __future__ import annotations

from typing import Optional

from repro.services.latency_model import LatencyModel
from repro.simulation.metrics import TimeSeries
from repro.traces.utilization import UtilizationTrace


class PrimaryTenantService:
    """The latency-critical service on one testbed server."""

    def __init__(
        self,
        server_id: str,
        trace: UtilizationTrace,
        latency_model: Optional[LatencyModel] = None,
        traffic_scale: float = 1.0,
    ) -> None:
        if traffic_scale <= 0:
            raise ValueError("traffic_scale must be positive")
        self.server_id = server_id
        self._trace = trace
        self._latency_model = latency_model or LatencyModel()
        self._traffic_scale = traffic_scale
        self.latency_series = TimeSeries(f"p99-{server_id}")

    @property
    def trace(self) -> UtilizationTrace:
        """The utilization trace driving the service's load."""
        return self._trace

    def utilization_at(self, time: float) -> float:
        """The service's CPU demand (fraction of the server) at ``time``."""
        return float(min(1.0, self._trace.value_at(time) * self._traffic_scale))

    def observe(
        self,
        time: float,
        secondary_cpu_fraction: float,
        secondary_io_fraction: float = 0.0,
    ) -> float:
        """Record and return the service's p99 latency at ``time``."""
        latency = self._latency_model.p99_latency_ms(
            self.utilization_at(time),
            secondary_cpu_fraction,
            secondary_io_fraction,
        )
        self.latency_series.add(time, latency)
        return latency

    def average_p99_ms(self) -> float:
        """Mean of the recorded p99 samples."""
        return self.latency_series.mean()

    def max_p99_ms(self) -> float:
        """Maximum recorded p99 sample."""
        return self.latency_series.maximum()
