"""Tests for the seeded random source."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.random import RandomSource


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = RandomSource(7)
        b = RandomSource(7)
        assert [a.uniform() for _ in range(5)] == [b.uniform() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = RandomSource(1)
        b = RandomSource(2)
        assert [a.uniform() for _ in range(5)] != [b.uniform() for _ in range(5)]

    def test_fork_is_deterministic(self):
        a = RandomSource(7).fork("child")
        b = RandomSource(7).fork("child")
        assert a.uniform() == b.uniform()

    def test_fork_labels_give_distinct_streams(self):
        parent = RandomSource(7)
        a = parent.fork("alpha")
        b = parent.fork("beta")
        assert a.uniform() != b.uniform()


class TestDraws:
    def test_bounded_normal_respects_bounds(self):
        rng = RandomSource(3)
        values = [rng.bounded_normal(0.5, 10.0, 0.0, 1.0) for _ in range(200)]
        assert all(0.0 <= v <= 1.0 for v in values)

    def test_exponential_requires_positive_mean(self):
        with pytest.raises(ValueError):
            RandomSource(0).exponential(0.0)

    def test_choice_empty_rejected(self):
        with pytest.raises(ValueError):
            RandomSource(0).choice([])

    def test_choice_returns_member(self):
        rng = RandomSource(0)
        items = ["a", "b", "c"]
        assert rng.choice(items) in items

    def test_sample_without_replacement(self):
        rng = RandomSource(0)
        sample = rng.sample(list(range(10)), 5)
        assert len(sample) == len(set(sample)) == 5

    def test_sample_too_many_rejected(self):
        with pytest.raises(ValueError):
            RandomSource(0).sample([1, 2], 3)

    def test_shuffle_preserves_elements(self):
        rng = RandomSource(0)
        original = list(range(20))
        shuffled = rng.shuffle(original)
        assert sorted(shuffled) == original
        assert original == list(range(20))


class TestWeightedIndex:
    def test_zero_weights_fall_back_to_uniform(self):
        rng = RandomSource(0)
        picks = {rng.weighted_index([0.0, 0.0, 0.0]) for _ in range(50)}
        assert picks <= {0, 1, 2}
        assert len(picks) > 1

    def test_dominant_weight_usually_wins(self):
        rng = RandomSource(0)
        picks = [rng.weighted_index([0.001, 100.0, 0.001]) for _ in range(200)]
        assert picks.count(1) > 180

    def test_empty_weights_rejected(self):
        with pytest.raises(ValueError):
            RandomSource(0).weighted_index([])

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_weighted_index_in_range(self, weights):
        index = RandomSource(0).weighted_index(weights)
        assert 0 <= index < len(weights)


class TestPoissonProcess:
    def test_zero_rate_yields_no_events(self):
        assert RandomSource(0).poisson_process(0.0, 1000.0) == []

    def test_events_within_duration_and_sorted(self):
        rng = RandomSource(0)
        events = rng.poisson_process(0.01, 10_000.0)
        assert all(0.0 <= t < 10_000.0 for t in events)
        assert events == sorted(events)

    def test_rate_roughly_matches(self):
        rng = RandomSource(5)
        duration = 200_000.0
        rate = 0.005
        events = rng.poisson_process(rate, duration)
        expected = rate * duration
        assert expected * 0.7 < len(events) < expected * 1.3


class TestPoissonProcessChunking:
    """The chunked thinning pass must be draw-for-draw scalar-equivalent."""

    @staticmethod
    def _scalar_reference(rng: RandomSource, rate: float, duration: float):
        if rate <= 0 or duration <= 0:
            return []
        times, t = [], 0.0
        while True:
            t += float(rng.generator.exponential(1.0 / rate))
            if t >= duration:
                break
            times.append(t)
        return times

    def test_matches_scalar_loop_and_stream_position(self):
        cases = [
            (0.0001, 2_000_000.0),  # ~200 events: several chunks
            (0.001, 500_000.0),
            (1e-7, 2_592_000.0),  # usually zero events
            (0.5, 30.0),
        ]
        for seed in range(25):
            for rate, duration in cases:
                scalar_rng = RandomSource(seed)
                chunked_rng = RandomSource(seed)
                expected = self._scalar_reference(scalar_rng, rate, duration)
                got = chunked_rng.poisson_process(rate, duration)
                assert got == expected, (seed, rate)
                # The stream position matches too: the next draw agrees.
                assert scalar_rng.uniform() == chunked_rng.uniform()

    def test_degenerate_inputs_consume_nothing(self):
        rng = RandomSource(3)
        untouched = RandomSource(3)
        assert rng.poisson_process(0.0, 100.0) == []
        assert rng.poisson_process(1.0, 0.0) == []
        assert rng.uniform() == untouched.uniform()
