"""Shared fixtures for the figure-regeneration benchmark suite.

Each benchmark regenerates one table or figure from the paper's evaluation
and asserts its qualitative shape (who wins, by roughly what factor, where
the crossover falls).  The heavyweight simulations (the testbed comparison
and the datacenter-scale sweeps) run once per session in fixtures and are
shared by the benchmarks that read different aspects of the same experiment,
exactly as one experiment in the paper feeds several figures.

Environment knobs:

* ``REPRO_BENCH_FULL=1`` runs the datacenter sweeps at their full breadth
  (all ten datacenters, more utilization levels).  The default keeps the
  whole suite to roughly ten minutes.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import BENCH_SCALE
from repro.experiments.scheduling import run_datacenter_sweep, run_fleet_improvements
from repro.experiments.testbed import run_scheduling_testbed, run_storage_testbed
from repro.traces.scaling import ScalingMethod

FULL_RUN = os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def scheduling_testbed():
    """Figures 10 and 11: the 3-variant scheduling testbed, run once."""
    return run_scheduling_testbed(BENCH_SCALE, seed=1)


@pytest.fixture(scope="session")
def storage_testbed():
    """Figure 12: the 3-variant storage testbed, run once."""
    return run_storage_testbed(BENCH_SCALE, seed=1)


@pytest.fixture(scope="session")
def dc9_sweep():
    """Figure 13: the DC-9 utilization sweep under both scalings."""
    levels = (0.25, 0.45, 0.6) if FULL_RUN else (0.25, 0.45)
    return run_datacenter_sweep(
        "DC-9",
        utilization_levels=levels,
        scalings=(ScalingMethod.LINEAR, ScalingMethod.ROOT),
        scale=BENCH_SCALE,
        seed=1,
    )


@pytest.fixture(scope="session")
def fleet_improvements():
    """Figure 14: per-datacenter improvements (subset unless REPRO_BENCH_FULL)."""
    names = None if FULL_RUN else ["DC-0", "DC-1", "DC-4", "DC-9"]
    return run_fleet_improvements(
        datacenters=names,
        utilization_levels=(0.45,),
        scalings=(ScalingMethod.LINEAR,),
        scale=BENCH_SCALE,
        seed=1,
        max_tenants=12,
        servers_per_tenant_limit=3,
    )
