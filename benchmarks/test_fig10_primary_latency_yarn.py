"""Figure 10: primary tenant tail latency under the YARN variants.

YARN-Stock hurts the primary tenant's p99 latency significantly because it
disregards the primary; YARN-PT and YARN-H/Tez-H keep the tail latency close
to the no-harvesting baseline (within tens of milliseconds in the paper).
"""

from __future__ import annotations

from repro.experiments.report import format_table

from conftest import run_once


def test_fig10_primary_latency_yarn(benchmark, scheduling_testbed):
    result = run_once(benchmark, lambda: scheduling_testbed)

    rows = [["No-Harvesting", f"{result.no_harvesting_p99_ms:.0f}", "-"]]
    for name in ("YARN-Stock", "YARN-PT", "YARN-H"):
        variant = result.variant(name)
        rows.append(
            [name, f"{variant.average_p99_ms:.0f}", f"{variant.max_p99_ms:.0f}"]
        )
    print()
    print(format_table(
        ["configuration", "avg p99 (ms)", "max p99 (ms)"],
        rows,
        title="Figure 10: primary tenant p99 latency (scheduling testbed)",
    ))

    baseline = result.no_harvesting_p99_ms
    stock = result.variant("YARN-Stock")
    pt = result.variant("YARN-PT")
    h = result.variant("YARN-H")

    # YARN-Stock degrades the tail latency well beyond the baseline.
    assert stock.average_p99_ms > baseline + 30.0
    # YARN-PT and YARN-H stay close to the no-harvesting baseline.
    assert abs(pt.average_p99_ms - baseline) < 50.0
    assert abs(h.average_p99_ms - baseline) < 50.0
    # And both primary-aware variants beat YARN-Stock by a wide margin.
    assert stock.average_p99_ms > pt.average_p99_ms
    assert stock.average_p99_ms > h.average_p99_ms
