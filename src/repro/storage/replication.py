"""Re-replication of under-replicated blocks.

When a DataNode stops heartbeating (or its disk is reimaged), the NameNode
re-creates the lost replicas on other servers — but throttled so re-creation
does not overload the network: 30 blocks per hour per server in the real
system (Section 5.1).  Whether a block survives a burst of reimages therefore
depends on the race between replica destruction and this bounded recovery
rate, which is exactly what the durability simulations measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List

#: Re-replication throughput limit per source server.
DEFAULT_BLOCKS_PER_HOUR_PER_SERVER = 30.0


@dataclass
class ReplicationManager:
    """Tracks the re-replication queue and enforces the recovery rate limit.

    Attributes:
        blocks_per_hour_per_server: how many replicas each surviving server
            can source per hour.
    """

    blocks_per_hour_per_server: float = DEFAULT_BLOCKS_PER_HOUR_PER_SERVER
    _pending: List[str] = field(default_factory=list)
    _pending_set: set[str] = field(default_factory=set)
    _last_drain_time: float = 0.0
    _credit: float = 0.0

    def __post_init__(self) -> None:
        if self.blocks_per_hour_per_server <= 0:
            raise ValueError("blocks_per_hour_per_server must be positive")

    @property
    def pending_count(self) -> int:
        """Blocks waiting for re-replication."""
        return len(self._pending)

    def enqueue(self, block_id: str) -> None:
        """Add a block to the re-replication queue (idempotent)."""
        if block_id not in self._pending_set:
            self._pending.append(block_id)
            self._pending_set.add(block_id)

    def enqueue_many(self, block_ids: Iterable[str]) -> None:
        """Queue several blocks in order (idempotent per block).

        Used by the batched creation path: enqueueing the under-replicated
        blocks of a batch at its end yields the same queue as enqueueing
        each one as it was created, because nothing drains mid-batch.
        """
        for block_id in block_ids:
            self.enqueue(block_id)

    def discard(self, block_id: str) -> None:
        """Drop a block from the queue (e.g. it was lost entirely)."""
        if block_id in self._pending_set:
            self._pending_set.discard(block_id)
            self._pending.remove(block_id)

    def drainable(self, now: float, healthy_servers: int) -> int:
        """How many queued blocks may be re-replicated by time ``now``.

        The budget accumulates continuously at
        ``blocks_per_hour_per_server * healthy_servers`` and is capped at one
        hour's worth so long idle periods do not bank an unbounded burst.
        """
        if healthy_servers <= 0:
            self._last_drain_time = now
            return 0
        elapsed_hours = max(0.0, (now - self._last_drain_time) / 3600.0)
        self._credit += (
            elapsed_hours * self.blocks_per_hour_per_server * healthy_servers
        )
        self._credit = min(
            self._credit, self.blocks_per_hour_per_server * healthy_servers
        )
        self._last_drain_time = now
        return int(self._credit)

    def drain(self, now: float, healthy_servers: int) -> List[str]:
        """Pop the block ids whose re-replication may start now."""
        budget = self.drainable(now, healthy_servers)
        if budget <= 0 or not self._pending:
            return []
        count = min(budget, len(self._pending))
        drained = self._pending[:count]
        self._pending = self._pending[count:]
        for block_id in drained:
            self._pending_set.discard(block_id)
        self._credit -= count
        return drained
