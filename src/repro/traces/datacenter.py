"""Datacenter, primary-tenant, and server models.

Under AutoPilot, every server belongs to an *environment* (a logically
related collection of servers, e.g. the indexing tier of a search engine) and
runs a *machine function* (a specific role, e.g. result ranking).  A primary
tenant is an ``<environment, machine function>`` pair; each datacenter hosts
between a few hundred and a few thousand primary tenants (Section 3.1).

These classes carry the synthetic utilization traces and reimage profiles the
policies consume, plus the physical attributes (rack, cores, memory, disk)
the simulators need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.traces.reimage import ReimageProfile
from repro.traces.utilization import UtilizationPattern, UtilizationTrace


@dataclass
class Server:
    """A physical server owned by one primary tenant.

    Attributes:
        server_id: globally unique identifier.
        tenant_id: owning primary tenant.
        rack: physical rack identifier used as a placement constraint.
        cores: number of CPU cores (the testbed uses 12).
        memory_gb: physical memory in GB (the testbed uses 32).
        disk_gb: total disk capacity in GB.
        harvestable_disk_gb: disk space the primary tenant allows the
            harvesting file system to use.
    """

    server_id: str
    tenant_id: str
    rack: str = "rack-0"
    cores: int = 12
    memory_gb: float = 32.0
    disk_gb: float = 2048.0
    harvestable_disk_gb: float = 1024.0

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError(f"cores must be positive (got {self.cores})")
        if self.memory_gb <= 0:
            raise ValueError(f"memory_gb must be positive (got {self.memory_gb})")
        if self.harvestable_disk_gb < 0:
            raise ValueError("harvestable_disk_gb must be non-negative")
        if self.harvestable_disk_gb > self.disk_gb:
            raise ValueError("harvestable_disk_gb cannot exceed disk_gb")


@dataclass
class PrimaryTenant:
    """An ``<environment, machine function>`` pair and its servers.

    Attributes:
        tenant_id: unique identifier (``environment/machine_function``).
        environment: logical environment the tenant belongs to.
        machine_function: role of the tenant's servers.
        servers: the servers owned by this tenant.
        trace: month-long CPU utilization of the tenant's average server.
        reimage_profile: reimaging behaviour for durability simulation.
        pattern: ground-truth utilization pattern (for validation only).
    """

    tenant_id: str
    environment: str
    machine_function: str
    servers: List[Server] = field(default_factory=list)
    trace: Optional[UtilizationTrace] = None
    reimage_profile: ReimageProfile = field(default_factory=ReimageProfile)
    pattern: Optional[UtilizationPattern] = None

    @property
    def num_servers(self) -> int:
        """How many servers the tenant owns."""
        return len(self.servers)

    @property
    def harvestable_disk_gb(self) -> float:
        """Total disk space the tenant makes available for harvesting."""
        return float(sum(s.harvestable_disk_gb for s in self.servers))

    def mean_utilization(self) -> float:
        """Average CPU utilization of the tenant's average server."""
        if self.trace is None:
            raise ValueError(f"tenant {self.tenant_id} has no utilization trace")
        return self.trace.mean()

    def peak_utilization(self, percentile: float = 99.0) -> float:
        """Peak (high-percentile) CPU utilization of the tenant."""
        if self.trace is None:
            raise ValueError(f"tenant {self.tenant_id} has no utilization trace")
        return self.trace.peak(percentile)

    def utilization_at(self, time_seconds: float) -> float:
        """Tenant utilization at a simulation time (trace wraps around)."""
        if self.trace is None:
            raise ValueError(f"tenant {self.tenant_id} has no utilization trace")
        return self.trace.value_at(time_seconds)


@dataclass
class Environment:
    """A named group of related primary tenants (AutoPilot environment)."""

    name: str
    tenant_ids: List[str] = field(default_factory=list)


@dataclass
class Datacenter:
    """A datacenter: primary tenants, their servers, and environments.

    Attributes:
        name: datacenter identifier (DC-0 .. DC-9 in the paper).
        tenants: primary tenants keyed by tenant id.
    """

    name: str
    tenants: Dict[str, PrimaryTenant] = field(default_factory=dict)

    def add_tenant(self, tenant: PrimaryTenant) -> None:
        """Register a tenant; ids must be unique within the datacenter."""
        if tenant.tenant_id in self.tenants:
            raise ValueError(f"duplicate tenant id {tenant.tenant_id}")
        self.tenants[tenant.tenant_id] = tenant

    @property
    def num_tenants(self) -> int:
        """Number of primary tenants."""
        return len(self.tenants)

    @property
    def num_servers(self) -> int:
        """Total number of servers across all tenants."""
        return sum(t.num_servers for t in self.tenants.values())

    @property
    def servers(self) -> List[Server]:
        """Every server in the datacenter."""
        return [s for t in self.tenants.values() for s in t.servers]

    @property
    def environments(self) -> Dict[str, Environment]:
        """Environments keyed by name, derived from the tenants."""
        envs: Dict[str, Environment] = {}
        for tenant in self.tenants.values():
            env = envs.setdefault(tenant.environment, Environment(tenant.environment))
            env.tenant_ids.append(tenant.tenant_id)
        return envs

    def tenant_of_server(self, server_id: str) -> PrimaryTenant:
        """Look up the owning tenant of a server id."""
        for tenant in self.tenants.values():
            for server in tenant.servers:
                if server.server_id == server_id:
                    return tenant
        raise KeyError(f"unknown server id {server_id}")

    def tenants_by_pattern(self) -> Dict[UtilizationPattern, List[PrimaryTenant]]:
        """Group tenants by their ground-truth utilization pattern."""
        groups: Dict[UtilizationPattern, List[PrimaryTenant]] = {
            pattern: [] for pattern in UtilizationPattern
        }
        for tenant in self.tenants.values():
            if tenant.pattern is not None:
                groups[tenant.pattern].append(tenant)
        return groups

    def server_fraction_by_pattern(self) -> Dict[UtilizationPattern, float]:
        """Fraction of servers per ground-truth pattern (Figure 3 shape)."""
        total = self.num_servers
        if total == 0:
            return {pattern: 0.0 for pattern in UtilizationPattern}
        groups = self.tenants_by_pattern()
        return {
            pattern: sum(t.num_servers for t in tenants) / total
            for pattern, tenants in groups.items()
        }

    def mean_utilization(self) -> float:
        """Server-weighted mean CPU utilization of the datacenter."""
        total_servers = self.num_servers
        if total_servers == 0:
            return 0.0
        weighted = sum(
            t.mean_utilization() * t.num_servers
            for t in self.tenants.values()
            if t.trace is not None
        )
        return float(weighted / total_servers)

    def utilization_matrix(self) -> np.ndarray:
        """Stack of every tenant's utilization trace (tenants x samples)."""
        traces = [t.trace.values for t in self.tenants.values() if t.trace is not None]
        if not traces:
            return np.zeros((0, 0))
        min_len = min(len(v) for v in traces)
        return np.vstack([v[:min_len] for v in traces])
