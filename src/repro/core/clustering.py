"""The clustering service: grouping primary tenants into utilization classes.

Section 4.1: once per day the clustering service takes the most recent
month-long utilization series of every primary tenant's "average" server,
runs the FFT on each series, groups the tenants into the three behaviour
patterns (periodic / constant / unpredictable), and then runs K-Means within
each pattern to produce utilization *classes*.  Each class is tagged with its
pattern, average utilization, and peak utilization, and the service keeps the
mapping from classes to their member tenants.

In the production deployment this runs as a standalone service queried by
the RM and the job manager (Figure 9); here it is a plain object that the
simulated RM-H, Tez-H and NN-H share.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

import numpy as np

from repro.analysis.classification import ClassificationThresholds, classify_profile
from repro.analysis.fft import FrequencyProfile, compute_spectrum
from repro.core.kmeans import kmeans
from repro.simulation.random import RandomSource
from repro.traces.datacenter import PrimaryTenant
from repro.traces.utilization import UtilizationPattern


@dataclass
class UtilizationClass:
    """A cluster of primary tenants with similar utilization behaviour.

    Attributes:
        class_id: stable identifier, also used as the YARN node label.
        pattern: the behaviour pattern shared by the member tenants.
        average_utilization: mean of the members' average utilizations.
        peak_utilization: mean of the members' peak (p99) utilizations.
        tenant_ids: member primary tenants.
    """

    class_id: str
    pattern: UtilizationPattern
    average_utilization: float
    peak_utilization: float
    tenant_ids: List[str] = field(default_factory=list)

    @property
    def num_tenants(self) -> int:
        """Number of member tenants."""
        return len(self.tenant_ids)


@dataclass
class _TenantProfile:
    """Cached per-tenant data the service derives from the trace."""

    tenant: PrimaryTenant
    profile: FrequencyProfile
    pattern: UtilizationPattern


class ClusteringService:
    """Clusters primary tenants into utilization classes.

    Args:
        clusters_per_pattern: target K-Means cluster count per pattern; DC-9
            in the paper yields 23 classes (13 periodic, 5 constant, 5
            unpredictable), so the defaults aim for a similar granularity.
        thresholds: pattern-classification thresholds.
        rng: random source for K-Means seeding (deterministic by default).
    """

    def __init__(
        self,
        clusters_per_pattern: Optional[Mapping[UtilizationPattern, int]] = None,
        thresholds: ClassificationThresholds = ClassificationThresholds(),
        rng: Optional[RandomSource] = None,
    ) -> None:
        self._clusters_per_pattern = dict(
            clusters_per_pattern
            or {
                UtilizationPattern.PERIODIC: 13,
                UtilizationPattern.CONSTANT: 5,
                UtilizationPattern.UNPREDICTABLE: 5,
            }
        )
        for pattern, count in self._clusters_per_pattern.items():
            if count <= 0:
                raise ValueError(f"cluster count for {pattern} must be positive")
        self._thresholds = thresholds
        self._rng = rng or RandomSource(0)
        self._classes: Dict[str, UtilizationClass] = {}
        self._tenant_to_class: Dict[str, str] = {}
        self._profiles: Dict[str, _TenantProfile] = {}

    # -- clustering --------------------------------------------------------

    def update(self, tenants: Iterable[PrimaryTenant]) -> List[UtilizationClass]:
        """(Re)cluster the given tenants; replaces any previous clustering.

        This is the periodic (e.g. daily) job the clustering service runs off
        the critical scheduling path.
        """
        profiles: List[_TenantProfile] = []
        for tenant in tenants:
            if tenant.trace is None:
                continue
            profile = compute_spectrum(tenant.trace)
            pattern = classify_profile(profile, self._thresholds)
            profiles.append(_TenantProfile(tenant, profile, pattern))

        self._classes = {}
        self._tenant_to_class = {}
        self._profiles = {p.tenant.tenant_id: p for p in profiles}

        for pattern in UtilizationPattern:
            members = [p for p in profiles if p.pattern is pattern]
            if not members:
                continue
            self._cluster_pattern(pattern, members)

        return self.classes()

    def _cluster_pattern(
        self, pattern: UtilizationPattern, members: List[_TenantProfile]
    ) -> None:
        """K-Means the members of one pattern and register the classes."""
        features = np.vstack([m.profile.feature_vector() for m in members])
        k = min(self._clusters_per_pattern[pattern], len(members))
        result = kmeans(features, k, rng=self._rng.fork(f"kmeans-{pattern.value}"))

        # Columnar member statistics: cluster membership becomes a mask over
        # the label vector and the class averages become masked reductions
        # (same member order, so the means are bit-identical to the list
        # comprehensions they replace).
        mean_utils = np.array([m.profile.mean_utilization for m in members])
        peak_utils = np.array([m.profile.peak_utilization for m in members])
        for cluster_index in range(result.num_clusters):
            member_indices = np.flatnonzero(result.labels == cluster_index)
            if not len(member_indices):
                continue
            class_id = f"{pattern.value}-{cluster_index}"
            avg_util = float(np.mean(mean_utils[member_indices]))
            peak_util = float(np.mean(peak_utils[member_indices]))
            tenant_ids = [members[i].tenant.tenant_id for i in member_indices]
            cls = UtilizationClass(
                class_id=class_id,
                pattern=pattern,
                average_utilization=avg_util,
                peak_utilization=peak_util,
                tenant_ids=tenant_ids,
            )
            self._classes[class_id] = cls
            for tenant_id in tenant_ids:
                self._tenant_to_class[tenant_id] = class_id

    # -- queries -----------------------------------------------------------

    def classes(self) -> List[UtilizationClass]:
        """All current utilization classes, sorted by class id."""
        return [self._classes[key] for key in sorted(self._classes)]

    def classes_by_pattern(
        self, pattern: UtilizationPattern
    ) -> List[UtilizationClass]:
        """Classes belonging to one pattern."""
        return [c for c in self.classes() if c.pattern is pattern]

    def get_class(self, class_id: str) -> UtilizationClass:
        """Look up a class by id."""
        if class_id not in self._classes:
            raise KeyError(f"unknown utilization class {class_id}")
        return self._classes[class_id]

    def class_of_tenant(self, tenant_id: str) -> Optional[str]:
        """Class id for a tenant, or None if the tenant was never clustered."""
        return self._tenant_to_class.get(tenant_id)

    def tenant_pattern(self, tenant_id: str) -> Optional[UtilizationPattern]:
        """Inferred behaviour pattern for a tenant."""
        profile = self._profiles.get(tenant_id)
        if profile is None:
            return None
        return profile.pattern

    def tenant_peak_utilization(self, tenant_id: str) -> Optional[float]:
        """Peak (p99) utilization of a tenant from its cached profile."""
        profile = self._profiles.get(tenant_id)
        if profile is None:
            return None
        return profile.profile.peak_utilization

    @property
    def num_classes(self) -> int:
        """Total number of utilization classes."""
        return len(self._classes)
