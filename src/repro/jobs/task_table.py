"""Columnar substrate for the jobs layer: one numpy row per task.

The fourth columnar substrate (after :class:`~repro.traces.matrix.TraceMatrix`,
:class:`~repro.cluster.fleet_state.FleetState` and
:class:`~repro.storage.block_table.BlockTable`): every task of a running job
is one row of a :class:`TaskTable`, with flat columns for the lifecycle state,
attempt count, duration and container slot, plus per-vertex pending/completed
counters and an upstream-dependency CSR.

What the scalar :class:`~repro.jobs.app_master.JobExecution` recomputed per
pump/completion/kill by rescanning every vertex's task list becomes
O(changed-vertices) bookkeeping:

* ``runnable_rows`` is one boolean frontier mask — a task needs a container
  iff its state column says pending-or-killed *and* its vertex's unmet
  upstream counter is zero;
* ``all_completed`` is one integer comparison against a running total;
* vertex readiness propagates through a downstream CSR the moment the last
  task of a vertex completes, instead of being rediscovered by the next
  full-DAG scan.

Equivalence contract
--------------------

Rows are laid out vertex-major in DAG insertion order with tasks in index
order — exactly the nesting of the scalar ``runnable_tasks`` loop — so
``np.flatnonzero`` over the frontier mask yields tasks in the identical
order, and everything downstream (per-request container draws against
:class:`~repro.cluster.fleet_state.FleetState`) consumes the random stream
draw for draw (see ``tests/test_jobs_task_table.py`` for the scalar oracle).

:class:`TaskView` objects are thin write-through views over the rows,
mirroring ``BlockView`` / ``ServerRecord``: the ``state`` / ``attempts``
attributes read and write the arrays, and every state transition keeps the
counters and the readiness frontier in sync.

The runnable frontier itself is cached between state transitions: the
overwhelmingly common pump tick touches no task state, so
:meth:`TaskTable.runnable_rows` / :meth:`TaskTable.runnable_views` hand back
the previously computed row array and view list untouched.  Any actual
``set_state`` transition — launch, completion, kill, or a completion that
unlocks downstream vertices — marks the frontier dirty, because each of
those can change either the needs-container column or the vertex-readiness
column the mask is built from.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

import numpy as np

from repro.jobs.dag import TaskState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.jobs.dag import JobDag


#: Integer state codes, index-aligned with :data:`STATE_ORDER`.
PENDING, RUNNING, COMPLETED, KILLED = range(4)

#: Row value -> TaskState, and back.
STATE_ORDER = (
    TaskState.PENDING,
    TaskState.RUNNING,
    TaskState.COMPLETED,
    TaskState.KILLED,
)
CODE_OF_STATE = {state: code for code, state in enumerate(STATE_ORDER)}


class TaskLayout:
    """The static, per-DAG part of a :class:`TaskTable`.

    Vertex indexing, task row ranges, durations, and the upstream /
    downstream CSRs depend only on the DAG structure, so recurring jobs
    (the TPC-DS queries are submitted hundreds of times per run) share one
    layout across all their executions; :meth:`of_dag` caches it on the DAG.
    """

    __slots__ = (
        "vertex_names",
        "index_of_vertex",
        "task_counts",
        "starts",
        "num_tasks",
        "vertex_of",
        "durations",
        "initial_unmet",
        "down_indptr",
        "down_indices",
    )

    def __init__(self, dag: "JobDag") -> None:
        vertices = list(dag.vertices.values())
        self.vertex_names: List[str] = [v.name for v in vertices]
        self.index_of_vertex: Dict[str, int] = {
            name: i for i, name in enumerate(self.vertex_names)
        }
        self.task_counts = np.array([v.num_tasks for v in vertices], dtype=np.int64)
        self.starts = np.zeros(len(vertices) + 1, dtype=np.int64)
        np.cumsum(self.task_counts, out=self.starts[1:])
        self.num_tasks = int(self.starts[-1])
        self.vertex_of = np.repeat(
            np.arange(len(vertices), dtype=np.int64), self.task_counts
        )
        self.durations = np.repeat(
            np.array([v.task_duration_seconds for v in vertices]), self.task_counts
        )
        self.initial_unmet = np.array(
            [len(v.upstream) for v in vertices], dtype=np.int64
        )
        # Downstream CSR: which vertices unblock when vertex v completes.
        down: List[List[int]] = [[] for _ in vertices]
        for index, vertex in enumerate(vertices):
            for upstream in vertex.upstream:
                down[self.index_of_vertex[upstream]].append(index)
        lengths = np.array([len(d) for d in down], dtype=np.int64)
        self.down_indptr = np.zeros(len(vertices) + 1, dtype=np.int64)
        np.cumsum(lengths, out=self.down_indptr[1:])
        self.down_indices = np.array(
            [i for targets in down for i in targets], dtype=np.int64
        )

    @staticmethod
    def of_dag(dag: "JobDag") -> "TaskLayout":
        """The (cached) layout of a DAG; built once per DAG instance."""
        layout = getattr(dag, "_task_layout", None)
        if layout is None:
            layout = TaskLayout(dag)
            dag._task_layout = layout
        return layout


class TaskView:
    """Write-through view of one task row (the scalar ``Task`` API)."""

    __slots__ = ("_table", "_row")

    def __init__(self, table: "TaskTable", row: int) -> None:
        self._table = table
        self._row = row

    @property
    def row(self) -> int:
        """This task's row in the table."""
        return self._row

    @property
    def task_id(self) -> str:
        """Unique task id (``job/vertex/index``)."""
        return self._table.task_id_of(self._row)

    @property
    def vertex_name(self) -> str:
        """Name of the DAG vertex this task belongs to."""
        layout = self._table.layout
        return layout.vertex_names[layout.vertex_of[self._row]]

    @property
    def duration_seconds(self) -> float:
        """How long the task runs once started."""
        return float(self._table.layout.durations[self._row])

    @property
    def state(self) -> TaskState:
        """Current lifecycle state."""
        return STATE_ORDER[self._table.state[self._row]]

    @state.setter
    def state(self, value: TaskState) -> None:
        self._table.set_state(self._row, CODE_OF_STATE[value])

    @property
    def attempts(self) -> int:
        """How many times the task has been (re)started."""
        return int(self._table.attempts[self._row])

    @attempts.setter
    def attempts(self, value: int) -> None:
        self._table.attempts[self._row] = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TaskView({self.task_id!r}, state={self.state.value!r}, "
            f"attempts={self.attempts})"
        )


class TaskTable:
    """Numpy columns over every task of one job execution."""

    def __init__(self, dag: "JobDag") -> None:
        self.layout = TaskLayout.of_dag(dag)
        self.job_name = dag.name
        n = self.layout.num_tasks
        #: Lifecycle state codes (:data:`PENDING` .. :data:`KILLED`).
        self.state = np.zeros(n, dtype=np.int8)
        #: Attempt counts.
        self.attempts = np.zeros(n, dtype=np.int64)
        #: Container id currently running the task (-1 when not running).
        self.container_slot = np.full(n, -1, dtype=np.int64)
        #: Pending-or-killed flag: the task wants a container.
        self._needs_container = np.ones(n, dtype=bool)
        self._needs_count = n
        #: Per-vertex completed-task counters.
        self.completed_counts = np.zeros(len(self.layout.task_counts), dtype=np.int64)
        #: Per-vertex count of upstream vertices not yet fully completed.
        self._unmet_upstream = self.layout.initial_unmet.copy()
        #: Readiness frontier: vertices whose upstreams have all completed.
        self._vertex_ready = self._unmet_upstream == 0
        self._total_completed = 0
        self._task_ids: List[str | None] = [None] * n
        self._views: List[TaskView | None] = [None] * n
        #: Frontier cache: rows/views are rebuilt only after a state change.
        self._frontier_dirty = True
        self._frontier_rows: np.ndarray | None = None
        self._frontier_views: List[TaskView] | None = None

    # -- serialized form ----------------------------------------------------

    def to_arrays(self) -> Dict[str, object]:
        """The table's dynamic columns — its canonical serialized form.

        Only the primary columns are captured: everything else (needs
        counters, per-vertex completion totals, the readiness frontier) is
        derived from ``state`` and the DAG layout, and
        :meth:`from_arrays` recomputes it.
        """
        return {
            "version": 1,
            "job_name": self.job_name,
            "state": np.array(self.state),
            "attempts": np.array(self.attempts),
            "container_slot": np.array(self.container_slot),
        }

    @classmethod
    def from_arrays(cls, dag: "JobDag", arrays: Dict[str, object]) -> "TaskTable":
        """Rebuild a table over ``dag`` from :meth:`to_arrays` output.

        The layout comes from the DAG (shared, as always); the derived
        counters and the frontier are recomputed from the state column, so
        the restored table answers every query exactly like the original.
        """
        table = cls(dag)
        state = np.asarray(arrays["state"], dtype=np.int8)
        if len(state) != table.num_tasks:
            raise ValueError(
                f"state column has {len(state)} rows; DAG {dag.name!r} "
                f"has {table.num_tasks} tasks"
            )
        layout = table.layout
        table.state = np.array(state)
        table.attempts = np.array(arrays["attempts"], dtype=np.int64)
        table.container_slot = np.array(arrays["container_slot"], dtype=np.int64)
        table._needs_container = (state == PENDING) | (state == KILLED)
        table._needs_count = int(table._needs_container.sum())
        completed = state == COMPLETED
        table.completed_counts = np.bincount(
            layout.vertex_of[completed], minlength=len(layout.task_counts)
        ).astype(np.int64)
        table._total_completed = int(completed.sum())
        unmet = layout.initial_unmet.copy()
        for vertex in np.flatnonzero(table.completed_counts == layout.task_counts):
            for i in range(
                int(layout.down_indptr[vertex]), int(layout.down_indptr[vertex + 1])
            ):
                unmet[int(layout.down_indices[i])] -= 1
        table._unmet_upstream = unmet
        table._vertex_ready = unmet == 0
        table._frontier_dirty = True
        return table

    # -- identity -----------------------------------------------------------

    @property
    def num_tasks(self) -> int:
        """Total number of task rows."""
        return self.layout.num_tasks

    def task_id_of(self, row: int) -> str:
        """The task id of a row (``job/vertex/index``), built lazily."""
        task_id = self._task_ids[row]
        if task_id is None:
            vertex = int(self.layout.vertex_of[row])
            index = row - int(self.layout.starts[vertex])
            task_id = f"{self.job_name}/{self.layout.vertex_names[vertex]}/{index}"
            self._task_ids[row] = task_id
        return task_id

    def view(self, row: int) -> TaskView:
        """The (stable-identity) view object for a row."""
        view = self._views[row]
        if view is None:
            view = TaskView(self, int(row))
            self._views[row] = view
        return view

    def views_by_vertex(self) -> Dict[str, List[TaskView]]:
        """Views grouped per vertex, in row order (the scalar ``tasks`` dict)."""
        layout = self.layout
        return {
            name: [
                self.view(row)
                for row in range(int(layout.starts[i]), int(layout.starts[i + 1]))
            ]
            for i, name in enumerate(layout.vertex_names)
        }

    # -- state transitions --------------------------------------------------

    def set_state(self, row: int, code: int) -> None:
        """Move one task to ``code``, keeping counters and frontier in sync."""
        old = int(self.state[row])
        if old == code:
            return
        # Any real transition can move the frontier: it rewrites the
        # needs-container column and/or (via completion propagation) the
        # vertex-readiness column the runnable mask intersects.
        self._frontier_dirty = True
        self.state[row] = code
        needs = code == PENDING or code == KILLED
        if needs != (old == PENDING or old == KILLED):
            self._needs_container[row] = needs
            self._needs_count += 1 if needs else -1
        if code != RUNNING:
            self.container_slot[row] = -1
        vertex = int(self.layout.vertex_of[row])
        if code == COMPLETED:
            self.completed_counts[vertex] += 1
            self._total_completed += 1
            if self.completed_counts[vertex] == self.layout.task_counts[vertex]:
                self._propagate_completion(vertex, -1)
        elif old == COMPLETED:
            # Regression (not hit by the simulator — completions are final —
            # but the bookkeeping stays exact if a test rewinds a state).
            if self.completed_counts[vertex] == self.layout.task_counts[vertex]:
                self._propagate_completion(vertex, +1)
            self.completed_counts[vertex] -= 1
            self._total_completed -= 1

    def _propagate_completion(self, vertex: int, delta: int) -> None:
        """A vertex crossed the fully-completed boundary; update downstreams."""
        layout = self.layout
        for i in range(int(layout.down_indptr[vertex]), int(layout.down_indptr[vertex + 1])):
            downstream = int(layout.down_indices[i])
            self._unmet_upstream[downstream] += delta
            self._vertex_ready[downstream] = self._unmet_upstream[downstream] == 0

    def mark_running(self, row: int, container_id: int) -> None:
        """Record a task launch into ``container_id``."""
        self.set_state(row, RUNNING)
        self.container_slot[row] = container_id
        self.attempts[row] += 1

    # -- queries ------------------------------------------------------------

    def vertex_completed(self, vertex_name: str) -> bool:
        """Whether every task of a vertex has completed (O(1))."""
        vertex = self.layout.index_of_vertex[vertex_name]
        return bool(
            self.completed_counts[vertex] == self.layout.task_counts[vertex]
        )

    def all_completed(self) -> bool:
        """Whether every task of every vertex has completed (O(1))."""
        return self._total_completed == self.layout.num_tasks

    @property
    def tasks_completed_total(self) -> int:
        """Running total of completed tasks."""
        return self._total_completed

    @property
    def needs_containers(self) -> bool:
        """Whether any task is pending-or-killed (O(1) counter check).

        False means the runnable frontier is certainly empty, letting the
        pump/kill retry loops skip the mask entirely for jobs whose every
        task is running or completed — the overwhelmingly common case.
        """
        return self._needs_count > 0

    @property
    def frontier_cached(self) -> bool:
        """Whether the next :meth:`runnable_views` call is a cache hit."""
        return not self._frontier_dirty and self._frontier_views is not None

    def cached_runnable_views(self) -> Optional[List[TaskView]]:
        """The cached frontier view list, or ``None`` on a stale cache.

        The pump fast path: when no state transition dirtied the frontier
        since the views were built, the caller gets the cached list (by
        identity, possibly empty) without touching the mask machinery.
        """
        if self._frontier_dirty:
            return None
        return self._frontier_views

    def runnable_rows(self) -> np.ndarray:
        """Rows of tasks that need a container and whose vertex is ready.

        Row order is vertex-major DAG insertion order — identical to the
        scalar ``for vertex ... for task`` rescans this mask replaces.  The
        returned array is cached (and read-only) until the next state
        transition dirties the frontier.
        """
        if self._frontier_dirty or self._frontier_rows is None:
            mask = self._needs_container & self._vertex_ready[self.layout.vertex_of]
            rows = mask.nonzero()[0]
            rows.setflags(write=False)
            self._frontier_rows = rows
            self._frontier_views = None
            self._frontier_dirty = False
        return self._frontier_rows

    def runnable_views(self) -> List[TaskView]:
        """The runnable frontier as stable view objects, in row order.

        The list object itself is cached alongside the rows; callers must
        treat it as read-only (every in-repo consumer only iterates it).
        """
        rows = self.runnable_rows()
        if self._frontier_views is None:
            self._frontier_views = [self.view(int(row)) for row in rows]
        return self._frontier_views
