"""Tests for the NameNode: placement, access, reimages, and recovery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.grid import TenantPlacementStats
from repro.simulation.random import RandomSource
from repro.storage.datanode import DataNode
from repro.storage.namenode import AccessResult, NameNode
from repro.storage.placement_policies import (
    HistoryPlacementPolicy,
    StockPlacementPolicy,
)
from repro.traces.datacenter import PrimaryTenant, Server
from repro.traces.utilization import UtilizationPattern, UtilizationTrace


def make_tenant(
    tenant_id: str, utilization: float, num_servers: int, environment: str | None = None
) -> PrimaryTenant:
    tenant = PrimaryTenant(
        tenant_id=tenant_id,
        environment=environment or f"env-{tenant_id}",
        machine_function="mf",
        trace=UtilizationTrace(
            np.full(100, utilization), UtilizationPattern.CONSTANT
        ),
        pattern=UtilizationPattern.CONSTANT,
    )
    for index in range(num_servers):
        tenant.servers.append(
            Server(
                server_id=f"{tenant_id}-s{index}",
                tenant_id=tenant_id,
                rack=f"rack-{index % 3}",
                harvestable_disk_gb=16.0,
            )
        )
    return tenant


def build_cluster(
    utilizations: dict[str, float],
    policy: str = "stock",
    primary_aware: bool = True,
    replication: int = 3,
    servers_per_tenant: int = 3,
) -> tuple[NameNode, list[PrimaryTenant]]:
    tenants = [
        make_tenant(tenant_id, util, servers_per_tenant)
        for tenant_id, util in utilizations.items()
    ]
    datanodes = [
        DataNode(server=s, tenant=t, primary_aware=primary_aware)
        for t in tenants
        for s in t.servers
    ]
    if policy == "history":
        placement = HistoryPlacementPolicy(rng=RandomSource(1))
        stats = [
            TenantPlacementStats(
                tenant_id=t.tenant_id,
                environment=t.environment,
                reimage_rate=t.reimage_profile.rate_per_server_month,
                peak_utilization=t.peak_utilization(),
                available_space_gb=t.harvestable_disk_gb,
                server_ids=[s.server_id for s in t.servers],
                racks_by_server={s.server_id: s.rack for s in t.servers},
            )
            for t in tenants
        ]
        placement.update_clustering(stats)
    else:
        placement = StockPlacementPolicy(rng=RandomSource(1))
    namenode = NameNode(
        datanodes,
        placement,
        primary_aware=primary_aware,
        default_replication=replication,
        rng=RandomSource(2),
    )
    return namenode, tenants


UTILIZATIONS = {f"t{i}": 0.1 + 0.05 * i for i in range(9)}


class TestCreation:
    def test_block_created_with_full_replication(self):
        namenode, tenants = build_cluster(UTILIZATIONS)
        creator = tenants[0].servers[0].server_id
        result = namenode.create_block(0.0, creating_server_id=creator)
        assert result.fully_replicated
        assert result.block is not None
        assert result.block.healthy_count == 3

    def test_stock_placement_uses_creating_server(self):
        namenode, tenants = build_cluster(UTILIZATIONS)
        creator = tenants[0].servers[0].server_id
        result = namenode.create_block(0.0, creating_server_id=creator)
        assert creator in result.block.servers_with_healthy_replicas()

    def test_history_placement_spreads_over_tenants(self):
        namenode, tenants = build_cluster(UTILIZATIONS, policy="history")
        result = namenode.create_block(
            0.0, creating_server_id=tenants[0].servers[0].server_id
        )
        assert result.block is not None
        assert len(set(result.block.tenants_with_healthy_replicas())) == 3

    def test_creation_fails_when_no_space(self):
        namenode, tenants = build_cluster({"t0": 0.1}, servers_per_tenant=1)
        # Fill the single server (16 GB harvestable, 0.25 GB blocks).
        for _ in range(64):
            namenode.create_block(0.0)
        result = namenode.create_block(0.0)
        assert result.block is None
        assert namenode.metrics.counter_value("block_creations_failed") == 1

    def test_invalid_replication_rejected(self):
        with pytest.raises(ValueError):
            build_cluster(UTILIZATIONS, replication=0)

    def test_namenode_requires_datanodes(self):
        with pytest.raises(ValueError):
            NameNode([], StockPlacementPolicy())


class TestAccess:
    def test_access_served_when_replicas_idle(self):
        namenode, _ = build_cluster(UTILIZATIONS)
        block = namenode.create_block(0.0).block
        assert namenode.access_block(block.block_id, 0.0) is AccessResult.SERVED

    def test_access_unavailable_when_all_replicas_busy(self):
        namenode, _ = build_cluster({f"t{i}": 0.9 for i in range(4)})
        # Creation at a time when everything is busy still places (exclusion
        # may leave the block empty), so create with awareness disabled first.
        namenode_idle, _ = build_cluster(
            {f"t{i}": 0.9 for i in range(4)}, primary_aware=False
        )
        block = namenode_idle.create_block(0.0).block
        assert namenode_idle.access_block(block.block_id, 0.0) is AccessResult.SERVED

        # Same layout but primary-aware: all replicas busy -> unavailable.
        namenode_aware, _ = build_cluster({f"t{i}": 0.9 for i in range(4)})
        # Place ignoring busyness by creating through the internal API.
        created = namenode_aware.create_block(0.0)
        if created.block is None or created.block.healthy_count == 0:
            pytest.skip("no replicas could be placed in this configuration")
        outcome = namenode_aware.access_block(created.block.block_id, 0.0)
        assert outcome is AccessResult.UNAVAILABLE

    def test_unknown_block_raises(self):
        namenode, _ = build_cluster(UTILIZATIONS)
        with pytest.raises(KeyError):
            namenode.access_block("missing", 0.0)

    def test_lost_block_reported(self):
        namenode, tenants = build_cluster(UTILIZATIONS)
        block = namenode.create_block(0.0).block
        for server_id in list(block.servers_with_healthy_replicas()):
            namenode.handle_reimage(server_id, 1.0)
        assert namenode.access_block(block.block_id, 2.0) is AccessResult.LOST


class TestReimageAndRecovery:
    def test_reimage_destroys_replicas_and_queues_recovery(self):
        namenode, _ = build_cluster(UTILIZATIONS)
        block = namenode.create_block(0.0).block
        victim = block.servers_with_healthy_replicas()[0]
        lost = namenode.handle_reimage(victim, 10.0)
        assert lost == []
        assert block.healthy_count == 2
        assert namenode.under_replicated_blocks() == [block]

    def test_recovery_restores_replication(self):
        namenode, _ = build_cluster(UTILIZATIONS)
        block = namenode.create_block(0.0).block
        victim = block.servers_with_healthy_replicas()[0]
        namenode.handle_reimage(victim, 10.0)
        restored = namenode.run_replication(10.0 + 3600.0)
        assert restored >= 1
        assert block.healthy_count == 3
        assert namenode.under_replicated_blocks() == []

    def test_simultaneous_reimage_of_all_replicas_loses_block(self):
        namenode, _ = build_cluster(UTILIZATIONS)
        block = namenode.create_block(0.0).block
        newly_lost = []
        for server_id in list(block.servers_with_healthy_replicas()):
            newly_lost.extend(namenode.handle_reimage(server_id, 10.0))
        assert block.block_id in newly_lost
        assert namenode.lost_blocks() == [block]
        assert namenode.lost_block_fraction() == pytest.approx(1.0)
        # Lost blocks are not recovered.
        namenode.run_replication(20_000.0)
        assert block.lost

    def test_reimage_of_unknown_server_is_noop(self):
        namenode, _ = build_cluster(UTILIZATIONS)
        assert namenode.handle_reimage("missing", 0.0) == []

    def test_used_space_tracks_replicas(self):
        namenode, _ = build_cluster(UTILIZATIONS)
        namenode.create_block(0.0)
        assert namenode.total_used_space_gb() == pytest.approx(3 * 0.25)
