"""Setup shim for legacy editable installs.

All metadata lives in ``pyproject.toml``; this file only enables
``pip install -e . --no-use-pep517`` in environments that lack the ``wheel``
package (PEP 517 editable builds need it, the legacy path does not).
"""

from setuptools import setup

setup()
