"""Arrival-process traffic drivers for the ``continuous`` scenario kind.

The figure scenarios run a pre-materialized workload to completion and emit
one terminal payload.  Continuous mode instead models *live traffic*: a
:class:`TrafficDriver` feeds jobs into a running
:class:`~repro.jobs.scheduler_variants.HarvestingCluster` as an event
stream, the engine runs for a configured horizon of fixed-length epochs,
and an :class:`EpochRecorder` snapshots cumulative counters at every epoch
boundary so the runner can emit *windowed* metrics per epoch.

Two arrival processes are provided:

* :class:`OpenLoopDriver` — rate-scheduled Poisson arrivals.  The rate is a
  :class:`RateSchedule`: constant, a one-time step, or a diurnal profile
  (a piecewise-constant day curve that repeats over the horizon).  Arrival
  times come from :meth:`RandomSource.poisson_process` segment by segment,
  so the stream is bit-identical to drawing scalar exponential gaps.
* :class:`ClosedLoopDriver` — N concurrent users.  Each user submits a job,
  waits for it to finish, thinks for an exponential think time, and submits
  the next one.  Every user owns a forked child stream, so the draw order
  is fixed per user regardless of how completions interleave.

Determinism: a driver consumes randomness only from the ``RandomSource``
handed to :meth:`TrafficDriver.attach` (the cell's recorded traffic seed),
forking child streams in a fixed label order.  A continuous cell therefore
computes the same epoch stream in any process — serial and ``--workers N``
runs are bit-identical by construction.

Traffic specs are parsed from compact CLI strings::

    open:rate=0.005
    open:rate=0.005,profile=step,step_at=1800,step_rate=0.01
    open:rate=0.005,profile=diurnal,period=7200,amplitude=0.5,slots=24
    closed:users=4,think=300
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.simulation.random import RandomSource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.harness.streaming import StreamingEpochAggregator
    from repro.jobs.scheduler_variants import HarvestingCluster
    from repro.jobs.tpcds import TpcdsWorkloadFactory

#: Epoch-boundary snapshots run after every same-time simulation event
#: (heartbeats, pumps, arrivals all schedule at priority <= 1), so a window
#: closing at time T includes everything that happened *at* T.
EPOCH_BOUNDARY_PRIORITY = 100


# ---------------------------------------------------------------------------
# Rate schedules
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RateSegment:
    """One piecewise-constant span of an arrival-rate schedule."""

    start: float
    end: float
    rate_per_second: float


class RateSchedule:
    """A piecewise-constant arrival rate over simulated time.

    The schedule is a sorted list of ``(offset, rate)`` breakpoints covering
    one period.  Aperiodic schedules (constant, step) use ``period=None``
    and their last breakpoint extends forever; periodic schedules (diurnal)
    repeat their breakpoint pattern every ``period`` seconds.
    """

    def __init__(
        self,
        breakpoints: List[Tuple[float, float]],
        period: Optional[float] = None,
        label: str = "custom",
    ) -> None:
        if not breakpoints:
            raise ValueError("a rate schedule needs at least one breakpoint")
        if breakpoints[0][0] != 0.0:
            raise ValueError("the first breakpoint must start at offset 0")
        offsets = [offset for offset, _ in breakpoints]
        if offsets != sorted(offsets) or len(set(offsets)) != len(offsets):
            raise ValueError("breakpoint offsets must be strictly increasing")
        for _, rate in breakpoints:
            if rate < 0:
                raise ValueError("arrival rates must be non-negative")
        if period is not None and period <= breakpoints[-1][0]:
            raise ValueError("period must exceed the last breakpoint offset")
        self._breakpoints = [(float(o), float(r)) for o, r in breakpoints]
        self.period = float(period) if period is not None else None
        self.label = label

    # -- constructors -------------------------------------------------------

    @classmethod
    def constant(cls, rate_per_second: float) -> "RateSchedule":
        """A flat arrival rate."""
        return cls([(0.0, rate_per_second)], label="constant")

    @classmethod
    def step(
        cls, rate_per_second: float, step_at: float, step_rate: float
    ) -> "RateSchedule":
        """A one-time rate change at ``step_at`` seconds."""
        if step_at <= 0:
            raise ValueError("step_at must be positive")
        return cls(
            [(0.0, rate_per_second), (float(step_at), step_rate)], label="step"
        )

    @classmethod
    def diurnal(
        cls,
        rate_per_second: float,
        amplitude: float = 0.5,
        period_seconds: float = 86400.0,
        slots: int = 24,
    ) -> "RateSchedule":
        """A repeating day curve: ``rate * (1 + amplitude * sin(...))``.

        The sinusoid is discretized into ``slots`` equal piecewise-constant
        spans per period (each slot takes the curve's value at its
        midpoint), because piecewise-constant rates compose exactly with
        per-segment homogeneous Poisson draws.  Rates clip at zero when
        ``amplitude > 1``.
        """
        if not 0 <= amplitude:
            raise ValueError("amplitude must be non-negative")
        if period_seconds <= 0 or slots <= 0:
            raise ValueError("period_seconds and slots must be positive")
        width = period_seconds / slots
        breakpoints = []
        for slot in range(slots):
            midpoint = (slot + 0.5) / slots
            rate = rate_per_second * (
                1.0 + amplitude * math.sin(2.0 * math.pi * midpoint)
            )
            breakpoints.append((slot * width, max(0.0, rate)))
        return cls(breakpoints, period=period_seconds, label="diurnal")

    # -- queries ------------------------------------------------------------

    def rate_at(self, time: float) -> float:
        """The instantaneous arrival rate at ``time``."""
        if time < 0:
            raise ValueError("time must be non-negative")
        offset = time % self.period if self.period is not None else time
        rate = self._breakpoints[0][1]
        for start, segment_rate in self._breakpoints:
            if offset >= start:
                rate = segment_rate
            else:
                break
        return rate

    def segments(self, horizon: float) -> List[RateSegment]:
        """The schedule unrolled over ``[0, horizon)`` as closed segments.

        Periodic schedules replicate their breakpoint pattern period by
        period; the final segment is clipped at ``horizon``.  Segment edges
        land exactly on the configured offsets, so a step placed on an epoch
        boundary splits the arrival draws precisely there.
        """
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        edges: List[Tuple[float, float]] = []
        if self.period is None:
            edges = list(self._breakpoints)
        else:
            repeats = int(math.ceil(horizon / self.period))
            for repeat in range(repeats):
                base = repeat * self.period
                edges.extend(
                    (base + offset, rate) for offset, rate in self._breakpoints
                )
        segments: List[RateSegment] = []
        for i, (start, rate) in enumerate(edges):
            if start >= horizon:
                break
            end = edges[i + 1][0] if i + 1 < len(edges) else horizon
            end = min(end, horizon)
            if end > start:
                segments.append(RateSegment(start, end, rate))
        return segments

    def arrival_times(self, horizon: float, rng: RandomSource) -> List[float]:
        """Poisson arrival times over ``[0, horizon)`` under the schedule.

        Each piecewise-constant segment draws a homogeneous process via
        :meth:`RandomSource.poisson_process` and offsets it by the segment
        start — the piecewise composition of an inhomogeneous process.  The
        draws (and the stream position after them) are bit-identical to a
        scalar loop drawing one exponential gap at a time per segment.
        """
        times: List[float] = []
        for segment in self.segments(horizon):
            duration = segment.end - segment.start
            times.extend(
                segment.start + t
                for t in rng.poisson_process(segment.rate_per_second, duration)
            )
        return times

    def describe(self) -> str:
        """A short human/fingerprint-stable label for the schedule."""
        base = self._breakpoints[0][1]
        if self.period is None:
            if len(self._breakpoints) == 1:
                return f"{self.label}(rate={base:g})"
            steps = ",".join(
                f"{offset:g}s->{rate:g}" for offset, rate in self._breakpoints[1:]
            )
            return f"{self.label}(rate={base:g},{steps})"
        return (
            f"{self.label}(rate~{base:g},period={self.period:g},"
            f"slots={len(self._breakpoints)})"
        )


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------


class TrafficDriver:
    """Base class: one arrival process feeding a harvesting cluster.

    Subclasses implement :meth:`attach`, which wires the process onto the
    cluster's engine *before* the run starts, drawing randomness only from
    the ``rng`` it is handed.  During the run the driver maintains
    ``jobs_submitted`` (cumulative) and ``submitted_log`` (``(time, job
    name)`` per submission, in submission order), which the epoch recorder
    and the determinism tests read.
    """

    kind: str = ""

    def __init__(self) -> None:
        self.jobs_submitted = 0
        self.submitted_log: List[Tuple[float, str]] = []

    def attach(
        self,
        cluster: "HarvestingCluster",
        factory: "TpcdsWorkloadFactory",
        horizon: float,
        rng: RandomSource,
    ) -> None:
        """Schedule the arrival process onto ``cluster.engine``."""
        raise NotImplementedError

    def describe(self) -> str:
        """A short label for results and tables."""
        raise NotImplementedError

    def _record(self, cluster: "HarvestingCluster", dag) -> None:
        """Submit one job now and log it."""
        cluster.submit_job(dag)
        self.jobs_submitted += 1
        self.submitted_log.append((cluster.engine.now, dag.name))


class OpenLoopDriver(TrafficDriver):
    """Open-loop traffic: rate-scheduled Poisson arrivals.

    Arrivals are independent of the system's progress — exactly the
    sustained-pressure regime the paper's harvesting story targets: the
    queue grows whenever the harvested capacity cannot keep up.
    """

    kind = "open"

    def __init__(self, schedule: RateSchedule) -> None:
        super().__init__()
        self.schedule = schedule

    def attach(
        self,
        cluster: "HarvestingCluster",
        factory: "TpcdsWorkloadFactory",
        horizon: float,
        rng: RandomSource,
    ) -> None:
        """Pre-draw the whole arrival stream and schedule it.

        Fork order is fixed: ``arrivals`` (the Poisson times) then
        ``queries`` (one uniform DAG pick per arrival, in arrival order).
        """
        arrival_rng = rng.fork("arrivals")
        query_rng = rng.fork("queries")
        queries = factory.all_queries()
        for time in self.schedule.arrival_times(horizon, arrival_rng):
            dag = query_rng.choice(queries)
            cluster.engine.schedule_at(
                time,
                lambda engine, d=dag: self._record(cluster, d),
                name=f"arrival-{dag.name}",
            )

    def describe(self) -> str:
        return f"open[{self.schedule.describe()}]"


class ClosedLoopDriver(TrafficDriver):
    """Closed-loop traffic: N concurrent users with think time.

    Each user cycles submit -> wait for completion -> think (exponential)
    -> submit.  Offered load therefore adapts to the system: a slow
    scheduler variant receives fewer jobs, which is the feedback regime
    open-loop traffic deliberately lacks.

    Every user forks its own child stream (labels ``user-0`` ..
    ``user-N-1``, in that order), and draws from it strictly alternate
    query pick / think time.  The per-user draw sequence is therefore
    independent of how completions from different users interleave, and
    replayable against a scalar oracle (see ``tests/test_traffic.py``).
    """

    kind = "closed"

    def __init__(self, users: int, think_seconds: float) -> None:
        super().__init__()
        if users <= 0:
            raise ValueError("users must be positive")
        if think_seconds <= 0:
            raise ValueError("think_seconds must be positive")
        self.users = users
        self.think_seconds = think_seconds
        #: Think-time draws per user, in draw order (for the oracle test).
        self.think_log: Dict[int, List[float]] = {}
        #: Submitted job names per user, in submission order (oracle test).
        self.submissions_by_user: Dict[int, List[str]] = {}
        self._pending: Dict[int, int] = {}  # id(execution) -> user

    def attach(
        self,
        cluster: "HarvestingCluster",
        factory: "TpcdsWorkloadFactory",
        horizon: float,
        rng: RandomSource,
    ) -> None:
        """Install the completion hook and start every user at time zero."""
        self._cluster = cluster
        self._horizon = horizon
        self._queries = factory.all_queries()
        self._user_rngs = [rng.fork(f"user-{i}") for i in range(self.users)]
        self.think_log = {user: [] for user in range(self.users)}
        self.submissions_by_user = {user: [] for user in range(self.users)}
        cluster.app_master.on_job_finished = self._job_finished
        for user in range(self.users):
            cluster.engine.schedule_at(
                0.0,
                lambda engine, u=user: self._submit(u),
                name=f"user-{user}-start",
            )

    def _submit(self, user: int) -> None:
        dag = self._user_rngs[user].choice(self._queries)
        execution = self._cluster.submit_job(dag)
        self._pending[id(execution)] = user
        self.jobs_submitted += 1
        self.submitted_log.append((self._cluster.engine.now, dag.name))
        self.submissions_by_user[user].append(dag.name)

    def _job_finished(self, execution, result) -> None:
        user = self._pending.pop(id(execution), None)
        if user is None:
            return
        think = float(self._user_rngs[user].exponential(self.think_seconds))
        self.think_log[user].append(think)
        next_time = self._cluster.engine.now + think
        if next_time < self._horizon:
            self._cluster.engine.schedule_at(
                next_time,
                lambda engine, u=user: self._submit(u),
                name=f"user-{user}-submit",
            )

    def describe(self) -> str:
        return f"closed[users={self.users},think={self.think_seconds:g}s]"


# ---------------------------------------------------------------------------
# Spec parsing
# ---------------------------------------------------------------------------


def _parse_fields(body: str, spec: str) -> Dict[str, str]:
    fields: Dict[str, str] = {}
    for chunk in body.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        if "=" not in chunk:
            raise ValueError(
                f"bad traffic spec {spec!r}: expected key=value, got {chunk!r}"
            )
        key, value = chunk.split("=", 1)
        fields[key.strip()] = value.strip()
    return fields


def _pop_float(fields: Dict[str, str], key: str, spec: str, default=None) -> Any:
    if key not in fields:
        if default is None:
            raise ValueError(f"bad traffic spec {spec!r}: missing {key}=")
        return default
    raw = fields.pop(key)
    try:
        return float(raw)
    except ValueError:
        raise ValueError(
            f"bad traffic spec {spec!r}: {key}={raw!r} is not a number"
        ) from None


def parse_traffic(spec: str) -> TrafficDriver:
    """A :class:`TrafficDriver` from a compact spec string.

    Grammar (see the module docstring for examples)::

        open:rate=R[,profile=constant|step|diurnal][,profile args...]
        closed:users=N[,think=SECONDS]

    Open-loop profile arguments: ``step_at``/``step_rate`` for ``step``;
    ``period``/``amplitude``/``slots`` for ``diurnal``.  Unknown keys are
    rejected so typos fail loudly instead of silently running the default.
    """
    text = spec.strip()
    if ":" not in text:
        raise ValueError(
            f"bad traffic spec {spec!r}: expected 'open:...' or 'closed:...'"
        )
    kind, body = text.split(":", 1)
    kind = kind.strip()
    fields = _parse_fields(body, spec)
    if kind == "open":
        rate = _pop_float(fields, "rate", spec)
        profile = fields.pop("profile", "constant")
        if profile == "constant":
            schedule = RateSchedule.constant(rate)
        elif profile == "step":
            step_at = _pop_float(fields, "step_at", spec)
            step_rate = _pop_float(fields, "step_rate", spec)
            schedule = RateSchedule.step(rate, step_at, step_rate)
        elif profile == "diurnal":
            schedule = RateSchedule.diurnal(
                rate,
                amplitude=_pop_float(fields, "amplitude", spec, default=0.5),
                period_seconds=_pop_float(fields, "period", spec, default=86400.0),
                slots=int(_pop_float(fields, "slots", spec, default=24)),
            )
        else:
            raise ValueError(
                f"bad traffic spec {spec!r}: unknown profile {profile!r}"
            )
        driver: TrafficDriver = OpenLoopDriver(schedule)
    elif kind == "closed":
        users = int(_pop_float(fields, "users", spec))
        think = _pop_float(fields, "think", spec, default=300.0)
        driver = ClosedLoopDriver(users, think)
    else:
        raise ValueError(f"bad traffic spec {spec!r}: unknown kind {kind!r}")
    if fields:
        unknown = ", ".join(sorted(fields))
        raise ValueError(f"bad traffic spec {spec!r}: unknown keys: {unknown}")
    return driver


def factory_from_spec(
    workload: Any,
    rng: RandomSource,
    duration_scale: float = 1.0,
    width_scale: float = 0.35,
):
    """The traffic layer's job factory: TPC-DS, or a spec-driven catalog.

    ``workload`` is the scenario's ``workload`` param — a
    :func:`repro.workload.parse_workload` overlay string, a
    :class:`~repro.workload.WorkloadSpec`, or ``None``/empty.  Absent, the
    historical TPC-DS factory is built with the exact arguments the drivers
    always used, so existing scenarios stay draw-identical; present, the
    catalog is drawn from the workload's job-shape distributions instead
    (same ``query``/``all_queries``/``duration_distribution`` surface, so
    every driver accepts either).
    """
    from repro.jobs.tpcds import TpcdsWorkloadFactory

    if not workload:
        return TpcdsWorkloadFactory(
            rng, duration_scale=duration_scale, width_scale=width_scale
        )
    from repro.workload.spec import workload_from_param
    from repro.workload.synthetic import ShapeWorkloadFactory

    return ShapeWorkloadFactory(workload_from_param(workload).shape, rng)


# ---------------------------------------------------------------------------
# Epoch windows
# ---------------------------------------------------------------------------


class EpochRecorder:
    """Snapshots cumulative cluster counters at every epoch boundary.

    Boundary events are scheduled at ``k * epoch_seconds`` with
    :data:`EPOCH_BOUNDARY_PRIORITY`, so a snapshot observes every
    simulation event that fired at the same timestamp.  The runner turns
    consecutive snapshots into per-epoch deltas — or, when a streaming
    ``aggregator`` is attached, each snapshot is handed to it at the
    boundary so the closed window folds and finalizes immediately.

    ``epochs == 0`` is the run-forever sentinel: instead of pre-scheduling
    a fixed boundary ladder, each boundary schedules the next one, so the
    ladder extends as far as the engine runs (the horizon cutoff simply
    stops executing future events).
    """

    def __init__(
        self,
        cluster: "HarvestingCluster",
        driver: TrafficDriver,
        epoch_seconds: float,
        epochs: int,
        aggregator: Optional["StreamingEpochAggregator"] = None,
    ) -> None:
        if epoch_seconds <= 0:
            raise ValueError("epoch_seconds must be positive")
        if epochs < 0:
            raise ValueError("epochs must be non-negative (0 = run forever)")
        self.cluster = cluster
        self.driver = driver
        self.epoch_seconds = float(epoch_seconds)
        self.epochs = int(epochs)
        self.aggregator = aggregator
        self.snapshots: List[Dict[str, Any]] = []

    def install(self) -> None:
        """Schedule boundary snapshots (call before ``run``).

        Bounded mode schedules the whole ladder up front; run-forever mode
        seeds only the first boundary and lets each boundary chain the next.
        """
        if self.epochs:
            for k in range(1, self.epochs + 1):
                self._schedule_boundary(k)
        else:
            self._schedule_boundary(1)

    def _schedule_boundary(self, k: int) -> None:
        self.cluster.engine.schedule_at(
            k * self.epoch_seconds,
            self._boundary,
            priority=EPOCH_BOUNDARY_PRIORITY,
            name=f"epoch-{k}",
        )

    def _snapshot(self, time: float) -> Dict[str, Any]:
        results = self.cluster.results
        return {
            "time": time,
            "jobs_submitted": self.driver.jobs_submitted,
            "jobs_completed": len(results),
            "tasks_completed": sum(r.tasks_completed for r in results),
            "tasks_killed": self.cluster.metrics.counter_value("tasks_killed"),
        }

    def _boundary(self, engine) -> None:
        snapshot = self._snapshot(engine.now)
        self.snapshots.append(snapshot)
        if self.aggregator is not None:
            self.aggregator.boundary(snapshot)
        if not self.epochs:
            self._schedule_boundary(len(self.snapshots) + 1)

    def finalize(self, now: float) -> List[Any]:
        """End of run: close the trailing partial window, flush the fold.

        In run-forever mode the horizon rarely lands on a boundary; the
        partial window past the last boundary still deserves an epoch, so
        take one last counter snapshot at ``now`` before the aggregator
        flushes.  Returns the full finalized
        :class:`~repro.harness.results.EpochMetrics` stream (empty without
        an aggregator — the legacy post-hoc path reads :attr:`snapshots`
        directly).
        """
        if self.aggregator is None:
            return []
        last = self.snapshots[-1]["time"] if self.snapshots else 0.0
        if now > last:
            self.snapshots.append(self._snapshot(now))
            self.aggregator.boundary(self.snapshots[-1])
        return self.aggregator.finalize()
