"""Named, seeded parametric distributions — the workload substrate's atoms.

A :class:`WorkloadSpec` names every random quantity of a workload (stage
counts, task fan-out, durations, inter-arrival gaps, access skew) by a
*distribution name* plus parameters.  Each distribution here is a frozen
dataclass whose :meth:`Distribution.sample` performs its draws through
exactly the :class:`~repro.simulation.random.RandomSource` calls a scalar
loop would make, so

* refactoring an existing generator onto a distribution object is
  draw-for-draw identical (the committed fingerprints do not move), and
* the determinism suite can mirror every ``sample`` with a direct
  ``RandomSource`` oracle call.

The module also carries the *access-skew* samplers (uniform / Zipf /
hotspot over a runtime-sized index range) used by the storage layer, and
the compact-string parsers the CLI exposes
(``"uniform:low=20,high=60"``, ``"zipf:alpha=1.2"``).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from functools import lru_cache
from typing import ClassVar, Dict, Tuple, Type

import numpy as np

from repro.simulation.random import RandomSource

#: Registry of distribution name -> class, populated by ``_distribution``.
DISTRIBUTIONS: Dict[str, Type["Distribution"]] = {}

#: Registry of skew-sampler name -> class, populated by ``_skew``.
SKEWS: Dict[str, Type["SkewSampler"]] = {}


def _distribution(cls: Type["Distribution"]) -> Type["Distribution"]:
    DISTRIBUTIONS[cls.name] = cls
    return cls


def _skew(cls: Type["SkewSampler"]) -> Type["SkewSampler"]:
    SKEWS[cls.name] = cls
    return cls


class Distribution:
    """A named scalar distribution sampled through a RandomSource."""

    name: ClassVar[str] = ""

    def sample(self, rng: RandomSource) -> float:
        """Draw one value, consuming ``rng`` exactly once per draw."""
        raise NotImplementedError

    def to_dict(self) -> Dict[str, object]:
        """The distribution as ``{"name": ..., **params}`` (JSON-safe)."""
        params = {f.name: getattr(self, f.name) for f in fields(self)}
        return {"name": self.name, **params}


@_distribution
@dataclass(frozen=True)
class Constant(Distribution):
    """Always ``value``; draws nothing from the stream."""

    name: ClassVar[str] = "constant"
    value: float = 0.0

    def sample(self, rng: RandomSource) -> float:
        return float(self.value)


@_distribution
@dataclass(frozen=True)
class Uniform(Distribution):
    """``rng.uniform(low, high)``."""

    name: ClassVar[str] = "uniform"
    low: float = 0.0
    high: float = 1.0

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ValueError(
                f"uniform requires low <= high (got {self.low} > {self.high})"
            )

    def sample(self, rng: RandomSource) -> float:
        return rng.uniform(self.low, self.high)


@_distribution
@dataclass(frozen=True)
class Exponential(Distribution):
    """``rng.exponential(mean)``; ``mean`` must be positive."""

    name: ClassVar[str] = "exponential"
    mean: float = 1.0

    def __post_init__(self) -> None:
        if self.mean <= 0:
            raise ValueError(f"exponential mean must be positive (got {self.mean})")

    def sample(self, rng: RandomSource) -> float:
        return rng.exponential(self.mean)


@_distribution
@dataclass(frozen=True)
class Normal(Distribution):
    """``rng.normal(mean, std)``; ``std`` must be non-negative."""

    name: ClassVar[str] = "normal"
    mean: float = 0.0
    std: float = 1.0

    def __post_init__(self) -> None:
        if self.std < 0:
            raise ValueError(f"normal std must be non-negative (got {self.std})")

    def sample(self, rng: RandomSource) -> float:
        return rng.normal(self.mean, self.std)


@_distribution
@dataclass(frozen=True)
class BoundedNormal(Distribution):
    """``rng.bounded_normal(mean, std, low, high)``."""

    name: ClassVar[str] = "bounded_normal"
    mean: float = 0.5
    std: float = 0.1
    low: float = 0.0
    high: float = 1.0

    def __post_init__(self) -> None:
        if self.std < 0:
            raise ValueError(
                f"bounded_normal std must be non-negative (got {self.std})"
            )
        if self.high < self.low:
            raise ValueError(
                f"bounded_normal requires low <= high (got {self.low} > {self.high})"
            )

    def sample(self, rng: RandomSource) -> float:
        return rng.bounded_normal(self.mean, self.std, self.low, self.high)


@_distribution
@dataclass(frozen=True)
class IntegerRange(Distribution):
    """``rng.integer(low, high)`` — ``high`` exclusive, returns an int."""

    name: ClassVar[str] = "integer"
    low: int = 0
    high: int = 1

    def __post_init__(self) -> None:
        for attr in ("low", "high"):
            value = getattr(self, attr)
            if float(value) != int(value):
                raise ValueError(f"integer {attr} must be integral (got {value})")
            object.__setattr__(self, attr, int(value))
        if self.high <= self.low:
            raise ValueError(
                f"integer requires low < high (got low={self.low}, high={self.high})"
            )

    def sample(self, rng: RandomSource) -> int:
        return rng.integer(self.low, self.high)


@_distribution
@dataclass(frozen=True)
class Categorical(Distribution):
    """One of ``values`` with probability proportional to ``weights``.

    Draws exactly one ``rng.weighted_index(weights)`` per sample.
    """

    name: ClassVar[str] = "categorical"
    values: Tuple[float, ...] = ()
    weights: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))
        object.__setattr__(self, "weights", tuple(float(w) for w in self.weights))
        if not self.values:
            raise ValueError("categorical requires at least one value")
        if len(self.values) != len(self.weights):
            raise ValueError(
                "categorical values and weights must have the same length "
                f"(got {len(self.values)} vs {len(self.weights)})"
            )
        if any(w < 0 for w in self.weights):
            raise ValueError(f"categorical weights must be non-negative "
                             f"(got {list(self.weights)})")
        if sum(self.weights) <= 0:
            raise ValueError("categorical weights must sum to a positive value")

    def sample(self, rng: RandomSource):
        return self.values[rng.weighted_index(self.weights)]


# ---------------------------------------------------------------------------
# Access-skew samplers: an index in [0, n) where n is only known at run time
# ---------------------------------------------------------------------------


class SkewSampler:
    """A named sampler of indices in ``[0, n)`` for block-access skew."""

    name: ClassVar[str] = ""

    def index(self, rng: RandomSource, n: int) -> int:
        """Draw one index; ``n`` is the live population size."""
        raise NotImplementedError

    def to_dict(self) -> Dict[str, object]:
        params = {f.name: getattr(self, f.name) for f in fields(self)}
        return {"name": self.name, **params}


@_skew
@dataclass(frozen=True)
class UniformSkew(SkewSampler):
    """Every index equally likely — draw-identical to ``rng.integer(0, n)``."""

    name: ClassVar[str] = "uniform"

    def index(self, rng: RandomSource, n: int) -> int:
        return int(rng.integer(0, n))


@lru_cache(maxsize=64)
def _zipf_cdf(alpha: float, n: int) -> np.ndarray:
    weights = 1.0 / np.arange(1, n + 1, dtype=float) ** alpha
    cdf = np.cumsum(weights)
    return cdf / cdf[-1]


@_skew
@dataclass(frozen=True)
class ZipfSkew(SkewSampler):
    """Rank-``alpha`` Zipf over creation order (index 0 is the hottest).

    One ``rng.uniform()`` draw inverted through the cached harmonic CDF.
    """

    name: ClassVar[str] = "zipf"
    alpha: float = 1.1

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError(f"zipf alpha must be positive (got {self.alpha})")

    def index(self, rng: RandomSource, n: int) -> int:
        return int(np.searchsorted(_zipf_cdf(self.alpha, n), rng.uniform(),
                                   side="right"))


@_skew
@dataclass(frozen=True)
class HotspotSkew(SkewSampler):
    """``hot_weight`` of traffic lands on the first ``hot_fraction`` of ids.

    Two draws per sample: one uniform for the hot/cold decision, one
    integer for the index within the chosen range.
    """

    name: ClassVar[str] = "hotspot"
    hot_fraction: float = 0.1
    hot_weight: float = 0.9

    def __post_init__(self) -> None:
        if not 0.0 < self.hot_fraction <= 1.0:
            raise ValueError(
                f"hotspot hot_fraction must be in (0, 1] (got {self.hot_fraction})"
            )
        if not 0.0 <= self.hot_weight <= 1.0:
            raise ValueError(
                f"hotspot hot_weight must be in [0, 1] (got {self.hot_weight})"
            )

    def index(self, rng: RandomSource, n: int) -> int:
        hot = min(n, max(1, int(round(n * self.hot_fraction))))
        if rng.uniform() < self.hot_weight:
            return int(rng.integer(0, hot))
        return int(rng.integer(0, n))


# ---------------------------------------------------------------------------
# Construction and compact-string parsing
# ---------------------------------------------------------------------------


def make_distribution(name: str, **params) -> Distribution:
    """Build a distribution by registry name; unknown names fail loudly."""
    try:
        cls = DISTRIBUTIONS[name]
    except KeyError:
        known = ", ".join(sorted(DISTRIBUTIONS))
        raise ValueError(f"unknown distribution {name!r}; known: {known}") from None
    try:
        return cls(**params)
    except TypeError as error:
        raise ValueError(f"bad parameters for distribution {name!r}: {error}") from None


def make_skew(name: str, **params) -> SkewSampler:
    """Build a skew sampler by registry name; unknown names fail loudly."""
    try:
        cls = SKEWS[name]
    except KeyError:
        known = ", ".join(sorted(SKEWS))
        raise ValueError(f"unknown skew {name!r}; known: {known}") from None
    try:
        return cls(**params)
    except TypeError as error:
        raise ValueError(f"bad parameters for skew {name!r}: {error}") from None


def _parse_params(body: str, context: str) -> Dict[str, float]:
    params: Dict[str, float] = {}
    for item in filter(None, body.split(",")):
        key, sep, raw = item.partition("=")
        if not sep or not key:
            raise ValueError(
                f"bad {context} parameter {item!r}: expected key=value"
            )
        try:
            params[key.strip()] = float(raw)
        except ValueError:
            raise ValueError(
                f"bad {context} parameter {item!r}: {raw!r} is not a number"
            ) from None
    return params


def parse_distribution(text: str) -> Distribution:
    """Parse ``"name:key=value,..."`` (e.g. ``"uniform:low=20,high=60"``)."""
    name, _, body = text.strip().partition(":")
    return make_distribution(name, **_parse_params(body, f"distribution {name!r}"))


def parse_skew(text: str) -> SkewSampler:
    """Parse ``"name:key=value,..."`` (e.g. ``"zipf:alpha=1.2"``)."""
    name, _, body = text.strip().partition(":")
    return make_skew(name, **_parse_params(body, f"skew {name!r}"))


def distribution_from_dict(data: Dict[str, object]) -> Distribution:
    """Inverse of :meth:`Distribution.to_dict`."""
    params = dict(data)
    name = params.pop("name", None)
    if not isinstance(name, str):
        raise ValueError(f"distribution record needs a 'name' field (got {data!r})")
    if name == "categorical":
        params["values"] = tuple(params.get("values", ()))
        params["weights"] = tuple(params.get("weights", ()))
    return make_distribution(name, **params)


def skew_from_dict(data: Dict[str, object]) -> SkewSampler:
    """Inverse of :meth:`SkewSampler.to_dict`."""
    params = dict(data)
    name = params.pop("name", None)
    if not isinstance(name, str):
        raise ValueError(f"skew record needs a 'name' field (got {data!r})")
    return make_skew(name, **params)
