"""Tests for the synthetic utilization trace generators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.random import RandomSource
from repro.traces.utilization import (
    SAMPLE_INTERVAL_SECONDS,
    SAMPLES_PER_DAY,
    SAMPLES_PER_MONTH,
    TraceSpec,
    UtilizationPattern,
    UtilizationTrace,
    average_trace,
    generate_trace,
)


class TestTraceSpec:
    def test_invalid_mean_rejected(self):
        with pytest.raises(ValueError):
            TraceSpec(UtilizationPattern.CONSTANT, mean_utilization=1.5)

    def test_invalid_days_rejected(self):
        with pytest.raises(ValueError):
            TraceSpec(UtilizationPattern.CONSTANT, days=0)

    def test_num_samples(self):
        spec = TraceSpec(UtilizationPattern.CONSTANT, days=2)
        assert spec.num_samples == 2 * SAMPLES_PER_DAY


class TestGeneration:
    @pytest.mark.parametrize("pattern", list(UtilizationPattern))
    def test_values_in_unit_interval(self, pattern):
        trace = generate_trace(
            TraceSpec(pattern, mean_utilization=0.4), RandomSource(1)
        )
        assert trace.num_samples == SAMPLES_PER_MONTH
        assert float(trace.values.min()) >= 0.0
        assert float(trace.values.max()) <= 1.0

    def test_generation_is_deterministic(self):
        spec = TraceSpec(UtilizationPattern.PERIODIC)
        a = generate_trace(spec, RandomSource(5))
        b = generate_trace(spec, RandomSource(5))
        np.testing.assert_array_equal(a.values, b.values)

    def test_periodic_has_daily_structure(self):
        trace = generate_trace(
            TraceSpec(UtilizationPattern.PERIODIC, mean_utilization=0.4),
            RandomSource(2),
        )
        # Autocorrelation at a one-day lag should be strongly positive.
        values = trace.values - trace.values.mean()
        day = SAMPLES_PER_DAY
        corr = float(
            np.corrcoef(values[:-day], values[day:])[0, 1]
        )
        assert corr > 0.5

    def test_constant_has_low_variation(self):
        trace = generate_trace(
            TraceSpec(UtilizationPattern.CONSTANT, mean_utilization=0.3),
            RandomSource(3),
        )
        assert float(trace.values.std()) < 0.06

    def test_unpredictable_has_more_variation_than_constant(self):
        constant = generate_trace(
            TraceSpec(UtilizationPattern.CONSTANT, mean_utilization=0.3),
            RandomSource(4),
        )
        unpredictable = generate_trace(
            TraceSpec(UtilizationPattern.UNPREDICTABLE, mean_utilization=0.3),
            RandomSource(4),
        )
        assert unpredictable.values.std() > constant.values.std()

    @given(st.floats(min_value=0.05, max_value=0.7))
    @settings(max_examples=20, deadline=None)
    def test_constant_mean_close_to_spec(self, mean):
        trace = generate_trace(
            TraceSpec(UtilizationPattern.CONSTANT, mean_utilization=mean, days=5),
            RandomSource(9),
        )
        assert abs(trace.mean() - mean) < 0.1


class TestUtilizationTrace:
    def test_rejects_out_of_range_values(self):
        with pytest.raises(ValueError):
            UtilizationTrace(np.array([0.5, 1.4]), UtilizationPattern.CONSTANT)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            UtilizationTrace(np.array([]), UtilizationPattern.CONSTANT)

    def test_value_at_wraps_around(self):
        trace = UtilizationTrace(
            np.array([0.1, 0.2, 0.3]), UtilizationPattern.CONSTANT
        )
        period = 3 * SAMPLE_INTERVAL_SECONDS
        assert trace.value_at(0.0) == pytest.approx(0.1)
        assert trace.value_at(SAMPLE_INTERVAL_SECONDS) == pytest.approx(0.2)
        assert trace.value_at(period) == pytest.approx(0.1)

    def test_value_at_negative_time_rejected(self):
        trace = UtilizationTrace(np.array([0.1]), UtilizationPattern.CONSTANT)
        with pytest.raises(ValueError):
            trace.value_at(-1.0)

    def test_peak_is_at_least_mean(self):
        trace = generate_trace(
            TraceSpec(UtilizationPattern.PERIODIC, mean_utilization=0.4),
            RandomSource(6),
        )
        assert trace.peak() >= trace.mean()

    def test_window_mean_matches_manual_average(self):
        values = np.linspace(0.0, 0.9, 10)
        trace = UtilizationTrace(values, UtilizationPattern.CONSTANT)
        window = trace.window_mean(0.0, 5 * SAMPLE_INTERVAL_SECONDS)
        assert window == pytest.approx(values[:5].mean())

    def test_duration(self):
        trace = UtilizationTrace(np.array([0.1, 0.2]), UtilizationPattern.CONSTANT)
        assert trace.duration_seconds == 2 * SAMPLE_INTERVAL_SECONDS


class TestAverageTrace:
    def test_average_of_identical_traces_is_identity(self):
        base = generate_trace(TraceSpec(UtilizationPattern.CONSTANT), RandomSource(1))
        averaged = average_trace([base, base])
        np.testing.assert_allclose(averaged.values, base.values)

    def test_average_requires_same_length(self):
        a = UtilizationTrace(np.array([0.1, 0.2]), UtilizationPattern.CONSTANT)
        b = UtilizationTrace(np.array([0.1]), UtilizationPattern.CONSTANT)
        with pytest.raises(ValueError):
            average_trace([a, b])

    def test_average_empty_rejected(self):
        with pytest.raises(ValueError):
            average_trace([])

    def test_mixed_patterns_become_unpredictable(self):
        a = UtilizationTrace(np.array([0.1, 0.2]), UtilizationPattern.CONSTANT)
        b = UtilizationTrace(np.array([0.3, 0.4]), UtilizationPattern.PERIODIC)
        assert average_trace([a, b]).pattern is UtilizationPattern.UNPREDICTABLE


class TestUnpredictableBurstChunking:
    """The chunked burst scan must consume the stream like the scalar loop."""

    @staticmethod
    def _scalar_reference(spec: TraceSpec, rng: RandomSource) -> np.ndarray:
        n = spec.num_samples
        values = np.empty(n)
        rng.uniform(0.3, 1.5)  # the legacy level draw, stream-compatible
        i = 0
        while i < n:
            regime_len = rng.integer(SAMPLES_PER_DAY // 6, 3 * SAMPLES_PER_DAY)
            level = rng.bounded_normal(
                spec.mean_utilization, spec.mean_utilization * 0.6, 0.0, 1.0
            )
            values[i : i + regime_len] = level
            i += regime_len
        i = 0
        while i < n:
            if rng.uniform() < spec.burst_probability:
                burst_len = max(1, rng.poisson(spec.burst_duration_samples))
                values[i : i + burst_len] = np.minimum(
                    1.0, values[i : i + burst_len] + spec.burst_magnitude
                )
                i += burst_len
            else:
                i += 1
        noise = rng.normal_array(0.0, spec.noise_std, n)
        return values + noise

    def test_matches_scalar_burst_scan(self):
        for seed in range(8):
            for burst_probability in (0.0, 0.01, 0.2):
                spec = TraceSpec(
                    UtilizationPattern.UNPREDICTABLE,
                    burst_probability=burst_probability,
                    days=7,
                )
                expected = np.clip(
                    self._scalar_reference(spec, RandomSource(seed)), 0.0, 1.0
                )
                got = generate_trace(spec, RandomSource(seed)).values
                assert np.array_equal(got, expected), (seed, burst_probability)
