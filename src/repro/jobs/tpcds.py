"""A synthetic TPC-DS-like batch workload.

The testbed runs 52 different Hive queries from the TPC-DS benchmark, which
translate into DAGs of relational processing tasks, arriving as a Poisson
stream with a 300-second mean inter-arrival time (Section 6.1).  The actual
query plans are not published, so this module synthesizes a family of 52
query DAGs whose structural statistics match what the paper reveals:

* query 19 is the published example (Figure 7): a multi-stage map/reduce
  pipeline whose widest wave of concurrent tasks is 469 containers;
* the remaining queries span small lookup-style queries (a handful of tasks)
  to wide scan-heavy queries (hundreds of concurrent tasks);
* job lengths spread across the short / medium / long thresholds (173 s and
  433 s) so the class-selection policy sees all three types.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.jobs.dag import JobDag, Vertex
from repro.simulation.random import RandomSource
from repro.workload.distributions import IntegerRange, Uniform
from repro.workload.spec import JobShapeSpec

#: Number of distinct queries in the workload, as in the paper's testbed.
NUM_QUERIES = 52

#: The three query families (small lookup / medium aggregation / wide join)
#: as workload shape specs.  ``JobShapeSpec.generate_dag`` consumes its
#: stream in exactly the order the inline synthesizer used, so these specs
#: are draw-for-draw identical to the legacy generator.
QUERY_SHAPES = (
    JobShapeSpec(
        stages=IntegerRange(2, 4),
        width=IntegerRange(2, 20),
        duration=Uniform(20.0, 60.0),
    ),
    JobShapeSpec(
        stages=IntegerRange(3, 6),
        width=IntegerRange(20, 120),
        duration=Uniform(40.0, 90.0),
    ),
    JobShapeSpec(
        stages=IntegerRange(4, 8),
        width=IntegerRange(100, 400),
        duration=Uniform(60.0, 140.0),
    ),
)


def _query19_dag() -> JobDag:
    """The published example DAG (Figure 7): peak concurrency 469.

    The figure shows a pipeline of mapper stages feeding reducer stages; the
    widest wave combines Mapper 2 with Mapper 8 for 469 concurrent tasks.
    """
    vertices = [
        Vertex("Mapper 1", 1, 40.0),
        Vertex("Mapper 2", 468, 45.0, upstream=["Mapper 1"]),
        Vertex("Mapper 8", 1, 30.0, upstream=["Mapper 1"]),
        Vertex("Reducer 3", 113, 60.0, upstream=["Mapper 2", "Mapper 8"]),
        Vertex("Reducer 4", 126, 55.0, upstream=["Reducer 3"]),
        Vertex("Reducer 5", 138, 50.0, upstream=["Reducer 4"]),
        Vertex("Mapper 9", 3, 25.0, upstream=["Reducer 5"]),
        Vertex("Mapper 10", 2, 25.0, upstream=["Reducer 5"]),
        Vertex("Reducer 6", 6, 35.0, upstream=["Mapper 9", "Mapper 10"]),
        Vertex("Mapper 11", 1, 20.0, upstream=["Reducer 6"]),
        Vertex("Reducer 7", 1, 30.0, upstream=["Mapper 11"]),
    ]
    return JobDag("tpcds-q19", vertices)


def _synthetic_query_dag(query_number: int, rng: RandomSource) -> JobDag:
    """A synthetic query DAG whose shape depends on the query number.

    One third of the queries are small interactive-style lookups (short
    jobs), one third medium aggregations, one third wide multi-stage joins
    (long jobs).  The widths and durations are drawn deterministically from
    the query number so the same query always has the same DAG.
    """
    query_rng = rng.fork(f"query-{query_number}")
    shape = QUERY_SHAPES[query_number % 3]
    return shape.generate_dag(f"tpcds-q{query_number}", query_rng)


def tpcds_query_dag(query_number: int, rng: Optional[RandomSource] = None) -> JobDag:
    """DAG for TPC-DS query ``query_number`` (1-based, 1..52)."""
    if not 1 <= query_number <= NUM_QUERIES:
        raise ValueError(
            f"query_number must be in [1, {NUM_QUERIES}] (got {query_number})"
        )
    if query_number == 19:
        return _query19_dag()
    return _synthetic_query_dag(query_number, rng or RandomSource(7))


class TpcdsWorkloadFactory:
    """Produces the 52-query workload and per-job scaled copies."""

    def __init__(
        self,
        rng: Optional[RandomSource] = None,
        duration_scale: float = 1.0,
        width_scale: float = 1.0,
    ) -> None:
        if duration_scale <= 0 or width_scale <= 0:
            raise ValueError("scale factors must be positive")
        self._rng = rng or RandomSource(7)
        self._duration_scale = duration_scale
        self._width_scale = width_scale
        self._dags: Dict[int, JobDag] = {}

    def query(self, query_number: int) -> JobDag:
        """The (cached) DAG for one query, with scaling applied."""
        if query_number not in self._dags:
            dag = tpcds_query_dag(query_number, self._rng)
            if self._duration_scale != 1.0 or self._width_scale != 1.0:
                dag = dag.scaled(self._duration_scale, self._width_scale)
            self._dags[query_number] = dag
        return self._dags[query_number]

    def all_queries(self) -> List[JobDag]:
        """Every query DAG in the workload."""
        return [self.query(number) for number in range(1, NUM_QUERIES + 1)]

    def duration_distribution(self) -> List[float]:
        """Critical-path durations of all queries (for threshold derivation)."""
        return [dag.critical_path_seconds() for dag in self.all_queries()]
