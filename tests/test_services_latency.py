"""Tests for the primary-tenant latency model and service wrapper."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.services.latency_model import LatencyModel, LatencyModelConfig
from repro.services.primary_tenant import PrimaryTenantService
from repro.simulation.random import RandomSource
from repro.traces.utilization import UtilizationPattern, UtilizationTrace


class TestLatencyModelConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyModelConfig(baseline_ms=0.0)
        with pytest.raises(ValueError):
            LatencyModelConfig(baseline_ms=400.0, max_latency_ms=300.0)


class TestLatencyModel:
    def test_baseline_matches_paper_range(self):
        """No-harvesting p99 averages 369-406 ms in the paper."""
        model = LatencyModel(rng=RandomSource(1))
        samples = [model.p99_latency_ms(0.3, 0.0) for _ in range(500)]
        assert 360.0 < float(np.mean(samples)) < 420.0

    def test_latency_without_interference_is_near_baseline(self):
        model = LatencyModel(rng=RandomSource(2))
        quiet = model.p99_latency_ms(0.4, 0.0)
        assert abs(quiet - model.config.baseline_ms) < 60.0

    def test_secondary_within_free_capacity_adds_little(self):
        model = LatencyModel(rng=RandomSource(3))
        # Primary at 30%, secondary at 30%: the reserve (33%) is untouched.
        values = [model.p99_latency_ms(0.3, 0.3) for _ in range(100)]
        assert float(np.mean(values)) < model.config.baseline_ms + 80.0

    def test_reserve_intrusion_increases_latency(self):
        model = LatencyModel(rng=RandomSource(4))
        polite = np.mean([model.p99_latency_ms(0.3, 0.3) for _ in range(100)])
        intrusive = np.mean([model.p99_latency_ms(0.3, 0.6) for _ in range(100)])
        assert intrusive > polite

    def test_overload_dominates(self):
        model = LatencyModel(rng=RandomSource(5))
        overloaded = np.mean([model.p99_latency_ms(0.7, 0.6) for _ in range(100)])
        fine = np.mean([model.p99_latency_ms(0.7, 0.0) for _ in range(100)])
        assert overloaded > fine + 300.0

    def test_latency_capped(self):
        model = LatencyModel(rng=RandomSource(6))
        assert model.p99_latency_ms(1.0, 5.0) <= model.config.max_latency_ms

    def test_validation(self):
        model = LatencyModel()
        with pytest.raises(ValueError):
            model.p99_latency_ms(1.5, 0.0)
        with pytest.raises(ValueError):
            model.p99_latency_ms(0.5, -1.0)
        with pytest.raises(ValueError):
            LatencyModel(reserve_fraction=1.0)

    @given(
        st.floats(min_value=0, max_value=1),
        st.floats(min_value=0, max_value=2),
        st.floats(min_value=0, max_value=1),
    )
    @settings(max_examples=100, deadline=None)
    def test_latency_positive_bounded_and_monotone_in_secondary(
        self, primary, secondary, io
    ):
        model = LatencyModel(rng=RandomSource(7))
        latency = model.p99_latency_ms(primary, secondary, io)
        assert 0.0 < latency <= model.config.max_latency_ms


class TestPrimaryTenantService:
    def make_service(self, utilization: float = 0.4) -> PrimaryTenantService:
        trace = UtilizationTrace(
            np.full(100, utilization), UtilizationPattern.CONSTANT
        )
        return PrimaryTenantService(
            "s0", trace, LatencyModel(rng=RandomSource(8))
        )

    def test_observe_records_time_series(self):
        service = self.make_service()
        service.observe(60.0, 0.0)
        service.observe(120.0, 0.5)
        assert service.latency_series.count == 2
        assert service.average_p99_ms() > 0.0
        assert service.max_p99_ms() >= service.average_p99_ms()

    def test_traffic_scale_amplifies_utilization(self):
        trace = UtilizationTrace(np.full(10, 0.4), UtilizationPattern.CONSTANT)
        scaled = PrimaryTenantService("s", trace, traffic_scale=2.0)
        assert scaled.utilization_at(0.0) == pytest.approx(0.8)
        with pytest.raises(ValueError):
            PrimaryTenantService("s", trace, traffic_scale=0.0)
