"""Figure 8: the two-dimensional (reimage x peak utilization) clustering.

Algorithm 2 splits the tenants of a datacenter into a 3x3 grid — reimage
frequency terciles by peak-utilization terciles — with the same amount of
harvestable storage in every cell, and the peak-utilization boundaries of
different rows are allowed to differ so that the equal-space property holds.
"""

from __future__ import annotations

import numpy as np

from repro.core.grid import TenantPlacementStats, build_grid
from repro.experiments.report import format_table
from repro.simulation.random import RandomSource
from repro.traces import build_datacenter, fleet_specs

from conftest import run_once


def build_dc9_grid(scale: float = 0.15):
    rng = RandomSource(0)
    spec = [s for s in fleet_specs() if s.name == "DC-9"][0]
    datacenter = build_datacenter(spec, rng, scale=scale)
    stats = [
        TenantPlacementStats(
            tenant_id=t.tenant_id,
            environment=t.environment,
            reimage_rate=t.reimage_profile.rate_per_server_month,
            peak_utilization=t.peak_utilization(),
            available_space_gb=t.harvestable_disk_gb,
            server_ids=[s.server_id for s in t.servers],
            racks_by_server={s.server_id: s.rack for s in t.servers},
        )
        for t in datacenter.tenants.values()
    ]
    return build_grid(stats), stats


def test_fig08_grid_clustering(benchmark):
    grid, stats = run_once(benchmark, build_dc9_grid)

    rows = []
    for (row, column), cell in sorted(grid.cells.items()):
        rows.append([
            f"({row},{column})",
            len(cell.tenant_ids),
            f"{cell.total_space_gb:.0f}",
        ])
    print()
    print(format_table(
        ["cell (reimage, peak-util)", "tenants", "space (GB)"],
        rows,
        title="Figure 8: two-dimensional clustering scheme (3x3)",
    ))
    print(f"\nSpace balance (min cell / max cell): {grid.space_balance():.2f}")

    # Every tenant is assigned to exactly one of the nine cells.
    assert len(grid.cell_of_tenant) == len(stats)
    assert len(grid.cells) == 9
    # Rows order tenants by reimage frequency.
    row_rates = {r: [] for r in range(3)}
    for s in stats:
        row, _ = grid.cell_of_tenant[s.tenant_id]
        row_rates[row].append(s.reimage_rate)
    assert np.mean(row_rates[0]) <= np.mean(row_rates[2])
    # Columns order tenants by peak utilization within each row.
    for row in range(3):
        low = [s.peak_utilization for s in grid.tenants_in_cell(row, 0)]
        high = [s.peak_utilization for s in grid.tenants_in_cell(row, 2)]
        if low and high:
            assert np.mean(low) <= np.mean(high) + 1e-9
    # Every cell is populated so replicas always have nine distinct choices;
    # perfect space balance is impossible with indivisible tenants (the
    # tradeoff Section 4.2 discusses), but no cell may be starved entirely.
    assert len(grid.non_empty_cells()) == 9
    assert grid.space_balance() > 0.0
