"""The Node Manager: per-server agent of the container scheduler.

The NodeManager tracks the primary tenant's core and memory utilization,
rounds it up to whole cores / whole GB, and reports the sum of that rounded
usage plus the secondary tenants' allocations to the Resource Manager in its
periodic heartbeat (every 3 seconds in the real systems).  When it detects
that the primary tenant has burst into the reserve, it kills containers from
youngest to oldest until the reserve is replenished (Section 5.3).

In Stock mode the NodeManager is oblivious to the primary tenant: it reports
only the container allocations and never kills for the primary's sake — the
behaviour that ruins primary tail latency in Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.cluster.resources import Resource
from repro.cluster.server import Container, SimulatedServer

#: Heartbeat period used by the modelled systems.
HEARTBEAT_INTERVAL_SECONDS = 3.0


@dataclass
class Heartbeat:
    """A Node Manager heartbeat to the Resource Manager.

    Attributes:
        server_id: reporting server.
        time: simulation time of the report.
        capacity: the server's total capacity.
        used: primary usage (rounded up) plus secondary allocations; in Stock
            mode just the secondary allocations.
        available: capacity minus used minus (in aware modes) the reserve.
        primary_utilization: primary tenant CPU fraction (aware modes only).
        killed_containers: containers killed since the previous heartbeat.
    """

    server_id: str
    time: float
    capacity: Resource
    used: Resource
    available: Resource
    primary_utilization: float
    killed_containers: List[Container]


class NodeManager:
    """Per-server agent producing heartbeats and enforcing the reserve."""

    def __init__(
        self,
        server: SimulatedServer,
        primary_aware: bool = True,
        on_kill: Optional[Callable[[Container], None]] = None,
    ) -> None:
        self._server = server
        self._primary_aware = primary_aware
        self._on_kill = on_kill

    @property
    def server(self) -> SimulatedServer:
        """The server this NodeManager runs on."""
        return self._server

    @property
    def server_id(self) -> str:
        """The managed server's id."""
        return self._server.server_id

    @property
    def primary_aware(self) -> bool:
        """Whether this NodeManager accounts for the primary tenant."""
        return self._primary_aware

    def enforce_reserve(self, time: float) -> List[Container]:
        """Kill containers (youngest first) if the primary burst into the reserve.

        Stock NodeManagers never kill on the primary tenant's behalf.
        """
        if not self._primary_aware:
            return []
        killed = self._server.reclaim_reserve(time)
        self.notify_kills(killed)
        return killed

    def notify_kills(self, killed: List[Container]) -> None:
        """Run the on-kill callback over an applied kill list, in order.

        The batched reclaim path applies kills directly on the server and
        reports them here, so callback order per server stays identical to
        :meth:`enforce_reserve`.
        """
        if self._on_kill is not None:
            for container in killed:
                self._on_kill(container)

    def heartbeat(self, time: float) -> Heartbeat:
        """Produce the heartbeat the Resource Manager consumes."""
        killed = self.enforce_reserve(time)
        allocated = self._server.allocated()
        if self._primary_aware:
            primary = self._server.primary_usage(time).rounded_up()
            used = primary + allocated
            available = self._server.reserve.harvestable(
                self._server.capacity, self._server.primary_usage(time)
            ) - allocated
            primary_utilization = self._server.primary_utilization(time)
        else:
            used = allocated
            available = self._server.capacity - allocated
            primary_utilization = 0.0
        return Heartbeat(
            server_id=self._server.server_id,
            time=time,
            capacity=self._server.capacity,
            used=used,
            available=Resource(
                max(0.0, available.cores), max(0.0, available.memory_gb)
            ),
            primary_utilization=primary_utilization,
            killed_containers=killed,
        )
