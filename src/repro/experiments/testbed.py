"""Testbed experiments (Figures 10, 11, 12).

The testbed is a 102-server cluster whose servers replay the utilization of
21 DC-9 primary tenants while TPC-DS jobs arrive as a Poisson stream.  Two
experiments are run:

* the *scheduling* experiment compares No-Harvesting, YARN-Stock, YARN-PT,
  and YARN-H/Tez-H on primary p99 tail latency (Figure 10) and on batch job
  execution times (Figure 11);
* the *storage* experiment compares HDFS-Stock, HDFS-PT, and HDFS-H on
  primary p99 tail latency and failed accesses (Figure 12 and its text).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.resource_manager import SchedulerMode
from repro.core.grid import TenantPlacementStats
from repro.experiments.config import ExperimentScale, QUICK_SCALE
from repro.jobs.scheduler_variants import ClusterConfig, HarvestingCluster
from repro.jobs.tpcds import TpcdsWorkloadFactory
from repro.jobs.workload import WorkloadGenerator
from repro.services.latency_model import LatencyModel
from repro.simulation.random import RandomSource
from repro.storage.datanode import DataNode
from repro.storage.namenode import AccessResult, NameNode
from repro.storage.placement_policies import (
    HistoryPlacementPolicy,
    StockPlacementPolicy,
)
from repro.traces.datacenter import Datacenter, PrimaryTenant, Server
from repro.traces.fleet import build_datacenter, fleet_specs
from repro.traces.scaling import ScalingMethod, fleet_scaling_factor, scale_trace
from repro.traces.utilization import UtilizationPattern


def build_testbed_tenants(
    scale: ExperimentScale, rng: RandomSource
) -> List[PrimaryTenant]:
    """Scale DC-9 down to the testbed: N tenants sharing ``num_servers`` servers.

    The paper reproduces 21 DC-9 primary tenants (13 periodic, 3 constant,
    5 unpredictable) on 102 servers.  We sample tenants from the synthetic
    DC-9 with the same pattern mix and re-assign them the testbed's servers.
    """
    dc9_spec = [s for s in fleet_specs() if s.name == "DC-9"][0]
    datacenter = build_datacenter(dc9_spec, rng.fork("testbed-dc9"), scale=0.3)

    desired_mix = {
        UtilizationPattern.PERIODIC: 13,
        UtilizationPattern.CONSTANT: 3,
        UtilizationPattern.UNPREDICTABLE: 5,
    }
    total_desired = sum(desired_mix.values())
    scale_factor = scale.num_tenants / total_desired
    desired = {
        pattern: max(1, int(round(count * scale_factor)))
        for pattern, count in desired_mix.items()
    }

    by_pattern = datacenter.tenants_by_pattern()
    selected: List[PrimaryTenant] = []
    for pattern, count in desired.items():
        pool = sorted(by_pattern.get(pattern, []), key=lambda t: t.tenant_id)
        selected.extend(pool[:count])

    if not selected:
        raise RuntimeError("failed to sample testbed tenants from DC-9")

    # Re-home the tenants onto exactly num_servers testbed servers (12 cores
    # and 32 GB each as in the paper), dealing the servers out round-robin so
    # every testbed server is used and tenant sizes stay balanced.
    testbed_tenants: List[PrimaryTenant] = [
        PrimaryTenant(
            tenant_id=tenant.tenant_id,
            environment=tenant.environment,
            machine_function=tenant.machine_function,
            trace=tenant.trace,
            reimage_profile=tenant.reimage_profile,
            pattern=tenant.pattern,
        )
        for tenant in selected
    ]
    for server_index in range(scale.num_servers):
        owner = testbed_tenants[server_index % len(testbed_tenants)]
        owner.servers.append(
            Server(
                server_id=f"testbed-srv-{server_index}",
                tenant_id=owner.tenant_id,
                rack=f"rack-{server_index % 8}",
                cores=12,
                memory_gb=32.0,
            )
        )
    return [tenant for tenant in testbed_tenants if tenant.servers]


# ---------------------------------------------------------------------------
# Scheduling testbed (Figures 10 and 11)
# ---------------------------------------------------------------------------


@dataclass
class VariantSchedulingResult:
    """Per-variant outcome of the scheduling testbed."""

    variant: str
    average_p99_ms: float
    max_p99_ms: float
    average_job_seconds: float
    jobs_completed: int
    tasks_killed: int
    average_cpu_utilization: float
    latency_samples: List[float] = field(default_factory=list)
    job_execution_seconds: List[float] = field(default_factory=list)


@dataclass
class SchedulingTestbedResult:
    """Figure 10/11 results: one entry per system variant plus the baseline."""

    no_harvesting_p99_ms: float
    variants: Dict[str, VariantSchedulingResult]

    def variant(self, name: str) -> VariantSchedulingResult:
        """Result for one variant by name (e.g. ``"YARN-H"``)."""
        return self.variants[name]


_SCHEDULING_VARIANTS = {
    "YARN-Stock": SchedulerMode.STOCK,
    "YARN-PT": SchedulerMode.PRIMARY_AWARE,
    "YARN-H": SchedulerMode.HISTORY,
}


def _run_one_scheduling_variant(
    name: str,
    mode: SchedulerMode,
    tenants: Sequence[PrimaryTenant],
    scale: ExperimentScale,
    rng: RandomSource,
) -> VariantSchedulingResult:
    """Run the testbed workload under one scheduler variant."""
    duration = scale.experiment_hours * 3600.0
    cluster = HarvestingCluster(
        tenants,
        config=ClusterConfig(mode=mode, record_server_series=True),
        rng=rng.fork(f"cluster-{name}"),
    )
    factory = TpcdsWorkloadFactory(rng.fork("tpcds"), duration_scale=1.0, width_scale=0.35)
    generator = WorkloadGenerator(
        factory, scale.mean_interarrival_seconds, rng.fork(f"workload-{name}")
    )
    cluster.submit_arrivals(generator.arrivals(duration * 0.8))
    cluster.run(duration)

    latency_model = LatencyModel(
        rng=rng.fork(f"latency-{name}"),
        reserve_fraction=cluster.config.reserve_cpu_fraction,
    )
    # Evaluate the primary tail latency per minute from the per-server demand
    # recorded at every heartbeat during the run.
    latencies: List[float] = []
    server_ids = list(cluster.servers.keys())
    resampled = {}
    for server_id in server_ids:
        secondary = cluster.metrics.time_series(f"secondary_cpu.{server_id}")
        primary = cluster.metrics.time_series(f"primary_cpu.{server_id}")
        resampled[server_id] = (
            secondary.resample_mean(60.0),
            primary.resample_mean(60.0),
        )
    num_minutes = min(
        len(values[0][1]) for values in resampled.values()
    ) if resampled else 0
    for minute in range(num_minutes):
        per_server = []
        for server_id in server_ids:
            (_, secondary_values), (_, primary_values) = resampled[server_id]
            per_server.append(
                latency_model.p99_latency_ms(
                    float(min(1.0, primary_values[minute])),
                    float(secondary_values[minute]),
                )
            )
        latencies.append(float(np.mean(per_server)))

    utilization_series = cluster.metrics.time_series("total_utilization")
    job_times = [r.execution_seconds for r in cluster.results]
    return VariantSchedulingResult(
        variant=name,
        average_p99_ms=float(np.mean(latencies)) if latencies else 0.0,
        max_p99_ms=float(np.max(latencies)) if latencies else 0.0,
        average_job_seconds=cluster.average_job_execution_seconds(),
        jobs_completed=cluster.completed_job_count(),
        tasks_killed=cluster.total_tasks_killed(),
        average_cpu_utilization=utilization_series.mean(),
        latency_samples=latencies,
        job_execution_seconds=job_times,
    )


def run_scheduling_testbed(
    scale: ExperimentScale = QUICK_SCALE,
    seed: int = 0,
) -> SchedulingTestbedResult:
    """Run the full scheduling testbed comparison (Figures 10 and 11)."""
    rng = RandomSource(seed)
    tenants = build_testbed_tenants(scale, rng)

    # No-Harvesting baseline: the primary service alone, no batch containers.
    latency_model = LatencyModel(rng=rng.fork("latency-baseline"))
    duration = scale.experiment_hours * 3600.0
    sample_times = np.arange(60.0, duration, 60.0)
    baseline_samples = []
    for t in sample_times:
        per_server = [
            latency_model.p99_latency_ms(tenant.utilization_at(t), 0.0)
            for tenant in tenants
            for _ in tenant.servers
        ]
        baseline_samples.append(float(np.mean(per_server)))
    baseline_p99 = float(np.mean(baseline_samples)) if baseline_samples else 0.0

    variants: Dict[str, VariantSchedulingResult] = {}
    for name, mode in _SCHEDULING_VARIANTS.items():
        variants[name] = _run_one_scheduling_variant(name, mode, tenants, scale, rng)

    return SchedulingTestbedResult(no_harvesting_p99_ms=baseline_p99, variants=variants)


# ---------------------------------------------------------------------------
# Storage testbed (Figure 12)
# ---------------------------------------------------------------------------


@dataclass
class VariantStorageResult:
    """Per-variant outcome of the storage testbed."""

    variant: str
    average_p99_ms: float
    max_p99_ms: float
    failed_accesses: int
    served_accesses: int
    blocks_created: int


@dataclass
class StorageTestbedResult:
    """Figure 12 results keyed by HDFS variant."""

    no_harvesting_p99_ms: float
    variants: Dict[str, VariantStorageResult]

    def variant(self, name: str) -> VariantStorageResult:
        """Result for one variant by name (e.g. ``"HDFS-H"``)."""
        return self.variants[name]


def _placement_stats(tenants: Sequence[PrimaryTenant]) -> List[TenantPlacementStats]:
    """Grid-clustering inputs derived from the tenants' histories."""
    stats: List[TenantPlacementStats] = []
    for tenant in tenants:
        stats.append(
            TenantPlacementStats(
                tenant_id=tenant.tenant_id,
                environment=tenant.environment,
                reimage_rate=tenant.reimage_profile.rate_per_server_month,
                peak_utilization=tenant.peak_utilization(),
                available_space_gb=tenant.harvestable_disk_gb,
                server_ids=[s.server_id for s in tenant.servers],
                racks_by_server={s.server_id: s.rack for s in tenant.servers},
            )
        )
    return stats


def _build_namenode(
    variant: str,
    tenants: Sequence[PrimaryTenant],
    rng: RandomSource,
    replication: int = 3,
) -> NameNode:
    """Assemble the NameNode + DataNodes for one HDFS variant."""
    primary_aware = variant != "HDFS-Stock"
    datanodes = [
        DataNode(server=s, tenant=t, primary_aware=primary_aware)
        for t in tenants
        for s in t.servers
    ]
    if variant == "HDFS-H":
        policy = HistoryPlacementPolicy(rng=rng.fork("policy"))
        policy.update_clustering(_placement_stats(tenants))
    else:
        policy = StockPlacementPolicy(rng=rng.fork("policy"))
    return NameNode(
        datanodes,
        policy,
        primary_aware=primary_aware,
        default_replication=replication,
        rng=rng.fork("namenode"),
    )


def run_storage_testbed(
    scale: ExperimentScale = QUICK_SCALE,
    seed: int = 0,
    accesses_per_minute: int = 60,
    utilization_target: float = 0.5,
) -> StorageTestbedResult:
    """Run the storage testbed comparison (Figure 12).

    Blocks are created throughout the experiment and read back at a constant
    rate; primary p99 latency is sampled per minute with the extra I/O
    contention each variant imposes on busy servers.  The primary traces are
    scaled towards ``utilization_target`` so that busy periods (utilization
    above the two-thirds access threshold) actually occur within the scaled-
    down experiment, as they do in the paper's production-derived traces.
    """
    if accesses_per_minute <= 0:
        raise ValueError("accesses_per_minute must be positive")
    if not 0.0 < utilization_target < 1.0:
        raise ValueError("utilization_target must be in (0, 1)")
    rng = RandomSource(seed)
    tenants = build_testbed_tenants(scale, rng)
    factor = fleet_scaling_factor(
        [t.trace for t in tenants if t.trace is not None],
        utilization_target,
        ScalingMethod.LINEAR,
        weights=[float(max(1, t.num_servers)) for t in tenants if t.trace is not None],
    )
    tenants = [
        PrimaryTenant(
            tenant_id=t.tenant_id,
            environment=t.environment,
            machine_function=t.machine_function,
            servers=list(t.servers),
            trace=scale_trace(t.trace, factor, ScalingMethod.LINEAR)
            if t.trace is not None
            else None,
            reimage_profile=t.reimage_profile,
            pattern=t.pattern,
        )
        for t in tenants
    ]
    duration = scale.experiment_hours * 3600.0

    latency_model = LatencyModel(rng=rng.fork("latency-baseline"))
    baseline_samples = [
        float(
            np.mean(
                [
                    latency_model.p99_latency_ms(t.utilization_at(minute), 0.0)
                    for t in tenants
                    for _ in t.servers
                ]
            )
        )
        for minute in np.arange(60.0, duration, 60.0)
    ]
    baseline_p99 = float(np.mean(baseline_samples)) if baseline_samples else 0.0

    results: Dict[str, VariantStorageResult] = {}
    for variant in ("HDFS-Stock", "HDFS-PT", "HDFS-H"):
        variant_rng = rng.fork(variant)
        namenode = _build_namenode(variant, tenants, variant_rng)
        model = LatencyModel(rng=variant_rng.fork("latency"))
        all_servers = [s for t in tenants for s in t.servers]

        block_ids: List[str] = []
        failed = 0
        served = 0
        latencies: List[float] = []
        for minute in np.arange(60.0, duration, 60.0):
            creator = variant_rng.choice(all_servers).server_id
            created = namenode.create_block(minute, creating_server_id=creator)
            if created.block is not None:
                block_ids.append(created.block.block_id)
            # Background re-replication restores replicas that could not be
            # placed while their candidate servers were busy.
            namenode.run_replication(minute)

            io_load: Dict[str, float] = {}
            for _ in range(accesses_per_minute):
                if not block_ids:
                    break
                block_id = variant_rng.choice(block_ids)
                outcome = namenode.access_block(block_id, minute)
                if outcome is AccessResult.SERVED:
                    served += 1
                    block = namenode.blocks[block_id]
                    healthy = block.servers_with_healthy_replicas()
                    if variant != "HDFS-Stock":
                        # Primary-aware variants only direct clients to
                        # replicas whose server is not busy.
                        healthy = [
                            s
                            for s in healthy
                            if namenode.datanodes[s].can_serve(minute)
                        ] or healthy
                    if healthy:
                        target = variant_rng.choice(healthy)
                        io_load[target] = io_load.get(target, 0.0) + 0.05
                elif outcome is AccessResult.UNAVAILABLE:
                    failed += 1

            per_server = []
            for tenant in tenants:
                for server in tenant.servers:
                    per_server.append(
                        model.p99_latency_ms(
                            tenant.utilization_at(minute),
                            0.0,
                            secondary_io_fraction=min(1.0, io_load.get(server.server_id, 0.0)),
                        )
                    )
            latencies.append(float(np.mean(per_server)))

        results[variant] = VariantStorageResult(
            variant=variant,
            average_p99_ms=float(np.mean(latencies)) if latencies else 0.0,
            max_p99_ms=float(np.max(latencies)) if latencies else 0.0,
            failed_accesses=failed,
            served_accesses=served,
            blocks_created=len(block_ids),
        )

    return StorageTestbedResult(no_harvesting_p99_ms=baseline_p99, variants=results)
