"""Characterization of primary-tenant utilization and reimaging behaviour.

This module produces the statistics behind Figures 2 through 6 of the paper:

* the percentage of primary tenants and of servers in each utilization
  pattern class (Figures 2 and 3);
* the CDF of per-server reimages per month and of per-tenant reimages per
  server per month (Figures 4 and 5);
* the CDF of the number of times a tenant changes reimage-frequency group
  (infrequent / intermediate / frequent) from month to month (Figure 6).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.analysis.classification import ClassificationThresholds, classify_tenants
from repro.simulation.random import RandomSource
from repro.traces.datacenter import Datacenter
from repro.traces.reimage import (
    ReimageEvent,
    generate_reimage_events,
    per_month_tenant_rates,
    per_server_monthly_counts,
)
from repro.traces.utilization import UtilizationPattern


class ReimageGroup(enum.IntEnum):
    """Relative reimage-frequency group used in Section 3.3 and Algorithm 2."""

    INFREQUENT = 0
    INTERMEDIATE = 1
    FREQUENT = 2


@dataclass
class DatacenterCharacterization:
    """Per-datacenter characterization results.

    Attributes:
        name: datacenter name.
        tenant_fraction_by_pattern: Figure 2 — fraction of tenants per class.
        server_fraction_by_pattern: Figure 3 — fraction of servers per class.
        per_server_reimages_per_month: Figure 4 samples.
        per_tenant_reimages_per_server_month: Figure 5 samples.
        group_changes_per_tenant: Figure 6 samples.
        reimage_events: the generated per-tenant reimage streams, keyed by
            tenant id, reusable by the durability simulations.
    """

    name: str
    tenant_fraction_by_pattern: Dict[UtilizationPattern, float]
    server_fraction_by_pattern: Dict[UtilizationPattern, float]
    per_server_reimages_per_month: List[float]
    per_tenant_reimages_per_server_month: List[float]
    group_changes_per_tenant: List[int]
    reimage_events: Dict[str, List[ReimageEvent]] = field(default_factory=dict)

    def predictable_server_fraction(self) -> float:
        """Fraction of servers whose history is a good predictor.

        The paper observes that about 75% of servers run periodic or constant
        tenants, for which historical utilization predicts the future well.
        """
        return (
            self.server_fraction_by_pattern.get(UtilizationPattern.PERIODIC, 0.0)
            + self.server_fraction_by_pattern.get(UtilizationPattern.CONSTANT, 0.0)
        )


def split_into_frequency_groups(
    rates_by_tenant: Mapping[str, float]
) -> Dict[str, ReimageGroup]:
    """Split tenants into three equal-sized reimage-frequency groups.

    Section 3.3 splits the tenants of a datacenter into infrequent /
    intermediate / frequent groups, each with the same number of tenants, by
    their reimage rate.  Ties are broken by tenant id for determinism.
    """
    if not rates_by_tenant:
        return {}
    ordered = sorted(rates_by_tenant.items(), key=lambda kv: (kv[1], kv[0]))
    n = len(ordered)
    groups: Dict[str, ReimageGroup] = {}
    for index, (tenant_id, _) in enumerate(ordered):
        if index < n / 3:
            groups[tenant_id] = ReimageGroup.INFREQUENT
        elif index < 2 * n / 3:
            groups[tenant_id] = ReimageGroup.INTERMEDIATE
        else:
            groups[tenant_id] = ReimageGroup.FREQUENT
    return groups


def reimage_group_changes(
    monthly_rates_by_tenant: Mapping[str, Sequence[float]]
) -> Dict[str, int]:
    """Count how many times each tenant changes frequency group month to month.

    For every month the tenants are re-split into three equal groups by that
    month's rate; a tenant's change count is the number of consecutive months
    whose group differs (Figure 6: at least 80% of tenants change 8 or fewer
    times out of 35 possible changes in three years).
    """
    tenant_ids = list(monthly_rates_by_tenant.keys())
    if not tenant_ids:
        return {}
    months = min(len(r) for r in monthly_rates_by_tenant.values())
    if months == 0:
        return {tenant_id: 0 for tenant_id in tenant_ids}

    previous: Dict[str, ReimageGroup] = {}
    changes: Dict[str, int] = {tenant_id: 0 for tenant_id in tenant_ids}
    for month in range(months):
        month_rates = {
            tenant_id: float(monthly_rates_by_tenant[tenant_id][month])
            for tenant_id in tenant_ids
        }
        groups = split_into_frequency_groups(month_rates)
        if previous:
            for tenant_id in tenant_ids:
                if groups[tenant_id] is not previous[tenant_id]:
                    changes[tenant_id] += 1
        previous = groups
    return changes


def characterize_datacenter(
    datacenter: Datacenter,
    months: int = 36,
    rng: Optional[RandomSource] = None,
    thresholds: ClassificationThresholds = ClassificationThresholds(),
) -> DatacenterCharacterization:
    """Run the Section 3 characterization on one datacenter.

    The utilization classes come from the FFT classifier; the reimaging
    statistics come from ``months`` months of generated reimage events (the
    paper uses three years of history).
    """
    if months <= 0:
        raise ValueError(f"months must be positive (got {months})")
    rng = (rng or RandomSource(0)).fork(f"characterize-{datacenter.name}")

    tenants = list(datacenter.tenants.values())
    predicted = classify_tenants(tenants, thresholds)

    tenant_counts: Dict[UtilizationPattern, int] = {p: 0 for p in UtilizationPattern}
    server_counts: Dict[UtilizationPattern, int] = {p: 0 for p in UtilizationPattern}
    for tenant in tenants:
        pattern = predicted.get(tenant.tenant_id, UtilizationPattern.UNPREDICTABLE)
        tenant_counts[pattern] += 1
        server_counts[pattern] += tenant.num_servers

    total_tenants = max(1, sum(tenant_counts.values()))
    total_servers = max(1, sum(server_counts.values()))

    per_server_rates: List[float] = []
    per_tenant_rates: List[float] = []
    monthly_rates_by_tenant: Dict[str, np.ndarray] = {}
    events_by_tenant: Dict[str, List[ReimageEvent]] = {}

    for tenant in tenants:
        server_ids = [s.server_id for s in tenant.servers]
        events = generate_reimage_events(
            server_ids, tenant.reimage_profile, months, rng.fork(tenant.tenant_id)
        )
        events_by_tenant[tenant.tenant_id] = events
        per_server = per_server_monthly_counts(events, server_ids, months)
        per_server_rates.extend(per_server.values())
        if server_ids:
            per_tenant_rates.append(
                sum(1 for _ in events) / (len(server_ids) * months)
            )
            monthly_rates_by_tenant[tenant.tenant_id] = per_month_tenant_rates(
                events, len(server_ids), months
            )

    changes = reimage_group_changes(monthly_rates_by_tenant)

    return DatacenterCharacterization(
        name=datacenter.name,
        tenant_fraction_by_pattern={
            p: tenant_counts[p] / total_tenants for p in UtilizationPattern
        },
        server_fraction_by_pattern={
            p: server_counts[p] / total_servers for p in UtilizationPattern
        },
        per_server_reimages_per_month=per_server_rates,
        per_tenant_reimages_per_server_month=per_tenant_rates,
        group_changes_per_tenant=list(changes.values()),
        reimage_events=events_by_tenant,
    )


def characterize_fleet(
    fleet: Mapping[str, Datacenter],
    months: int = 36,
    rng: Optional[RandomSource] = None,
) -> Dict[str, DatacenterCharacterization]:
    """Characterize every datacenter in the fleet."""
    rng = rng or RandomSource(0)
    return {
        name: characterize_datacenter(dc, months=months, rng=rng)
        for name, dc in fleet.items()
    }


def average_server_fraction(
    characterizations: Mapping[str, DatacenterCharacterization],
    pattern: UtilizationPattern,
) -> float:
    """Fleet-average fraction of servers in a pattern class (Figure 3)."""
    if not characterizations:
        return 0.0
    fractions = [
        c.server_fraction_by_pattern.get(pattern, 0.0)
        for c in characterizations.values()
    ]
    return float(np.mean(fractions))
