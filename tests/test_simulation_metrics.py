"""Tests for the metric collectors."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.metrics import Counter, Distribution, MetricRegistry, TimeSeries


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.increment()
        counter.increment(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").increment(-1)

    def test_reset(self):
        counter = Counter("c")
        counter.increment(3)
        counter.reset()
        assert counter.value == 0


class TestDistribution:
    def test_summary_statistics(self):
        dist = Distribution("d")
        dist.extend([1.0, 2.0, 3.0, 4.0])
        assert dist.count == 4
        assert dist.mean() == pytest.approx(2.5)
        assert dist.minimum() == 1.0
        assert dist.maximum() == 4.0
        assert dist.percentile(50) == pytest.approx(2.5)

    def test_empty_distribution_is_zero(self):
        dist = Distribution("d")
        assert dist.mean() == 0.0
        assert dist.percentile(99) == 0.0
        assert dist.std() == 0.0

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            Distribution("d").add(float("nan"))
        with pytest.raises(ValueError):
            Distribution("d").add(float("inf"))

    def test_percentile_range_validated(self):
        dist = Distribution("d")
        dist.add(1.0)
        with pytest.raises(ValueError):
            dist.percentile(101)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_mean_between_min_and_max(self, values):
        dist = Distribution("d")
        dist.extend(values)
        assert dist.minimum() - 1e-9 <= dist.mean() <= dist.maximum() + 1e-9

    def test_summary_keys(self):
        dist = Distribution("d")
        dist.extend([1.0, 5.0])
        summary = dist.summary()
        assert set(summary) == {"count", "mean", "min", "max", "p50", "p95", "p99"}


class TestTimeSeries:
    def test_add_and_read_back(self):
        series = TimeSeries("s")
        series.add(0.0, 1.0)
        series.add(10.0, 3.0)
        assert series.count == 2
        assert series.mean() == pytest.approx(2.0)
        assert series.maximum() == 3.0

    def test_times_must_be_non_decreasing(self):
        series = TimeSeries("s")
        series.add(10.0, 1.0)
        with pytest.raises(ValueError):
            series.add(5.0, 1.0)

    def test_window_mean(self):
        series = TimeSeries("s")
        for t in range(10):
            series.add(float(t), float(t))
        assert series.window_mean(0.0, 5.0) == pytest.approx(2.0)
        assert series.window_mean(100.0, 200.0) == 0.0

    def test_window_mean_validates_bounds(self):
        with pytest.raises(ValueError):
            TimeSeries("s").window_mean(5.0, 5.0)

    def test_resample_mean(self):
        series = TimeSeries("s")
        for t in range(0, 100, 10):
            series.add(float(t), float(t))
        centers, means = series.resample_mean(50.0)
        assert len(centers) == 2
        assert means[0] == pytest.approx(np.mean([0, 10, 20, 30, 40]))

    def test_resample_empty(self):
        centers, means = TimeSeries("s").resample_mean(10.0)
        assert len(centers) == 0 and len(means) == 0


class TestMetricRegistry:
    def test_lazily_creates_and_reuses(self):
        registry = MetricRegistry()
        registry.counter("a").increment()
        registry.counter("a").increment()
        assert registry.counter_value("a") == 2
        assert registry.counter_value("missing", default=7) == 7

    def test_snapshot_contains_all_metric_kinds(self):
        registry = MetricRegistry()
        registry.counter("jobs").increment(3)
        registry.distribution("latency").add(5.0)
        registry.time_series("util").add(0.0, 0.5)
        snapshot = registry.snapshot()
        assert snapshot["counter.jobs"] == 3.0
        assert snapshot["dist.latency.mean"] == 5.0
        assert snapshot["series.util.count"] == 1.0


class TestTimeSeriesExtend:
    def test_extend_matches_repeated_add(self):
        a, b = TimeSeries("a"), TimeSeries("b")
        times = [0.0, 1.0, 1.0, 3.5]
        values = [0.1, 0.2, 0.3, 0.4]
        for t, v in zip(times, values):
            a.add(t, v)
        b.extend(times, values)
        assert a.times.tolist() == b.times.tolist()
        assert a.values.tolist() == b.values.tolist()

    def test_extend_validates(self):
        series = TimeSeries("s")
        with pytest.raises(ValueError):
            series.extend([0.0, 1.0], [0.5])
        with pytest.raises(ValueError):
            series.extend([2.0, 1.0], [0.5, 0.5])
        series.add(5.0, 1.0)
        with pytest.raises(ValueError):
            series.extend([4.0], [0.5])
        series.extend([], [])
        assert series.count == 1
