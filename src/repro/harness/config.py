"""Experiment scales.

The paper's experiments run for five hours on 102 servers (testbed) or for a
month to a year on thousands of servers (simulation).  Reproducing every
figure at full scale in a unit-test run would take too long, so each driver
accepts an :class:`ExperimentScale` that shrinks the cluster, the workload,
and the duration while preserving the comparisons the figures make.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs controlling how large an experiment run is.

    Attributes:
        num_servers: testbed server count (the paper uses 102).
        num_tenants: how many DC-9 primary tenants the testbed reproduces.
        experiment_hours: length of a testbed experiment (the paper uses 5).
        mean_interarrival_seconds: mean job inter-arrival time.
        simulation_days: length of the scheduling/availability simulations
            (the paper simulates a month).
        durability_days: length of the durability simulation (a year in the
            paper).
        num_blocks: blocks created for the durability/availability studies
            (4 million in the paper).
        datacenter_scale: multiplier on the synthetic fleet's tenant counts.
        repetitions: how many seeds each configuration is run with (the paper
            reports five-run ranges).
    """

    num_servers: int = 102
    num_tenants: int = 21
    experiment_hours: float = 5.0
    mean_interarrival_seconds: float = 300.0
    simulation_days: float = 30.0
    durability_days: float = 365.0
    num_blocks: int = 4_000_000
    datacenter_scale: float = 1.0
    repetitions: int = 5

    def __post_init__(self) -> None:
        if self.num_servers <= 0 or self.num_tenants <= 0:
            raise ValueError("server and tenant counts must be positive")
        if self.experiment_hours <= 0 or self.simulation_days <= 0:
            raise ValueError("durations must be positive")
        if self.num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        if self.repetitions <= 0:
            raise ValueError("repetitions must be positive")


#: The paper's configuration (hours of wall-clock to run in full).
TESTBED_SCALE = ExperimentScale()

#: A scaled-down configuration that regenerates every figure's shape quickly.
QUICK_SCALE = ExperimentScale(
    num_servers=30,
    num_tenants=21,
    experiment_hours=3.0,
    mean_interarrival_seconds=120.0,
    simulation_days=2.0,
    durability_days=60.0,
    num_blocks=3_000,
    datacenter_scale=0.15,
    repetitions=2,
)

#: The scale the figure-regeneration benchmark suite and the perf-trajectory
#: emitter (``benchmarks/emit_bench.py``) run at: large enough that the hot
#: paths dominate, small enough that the whole suite stays in CI budget.
BENCH_SCALE = ExperimentScale(
    num_servers=30,
    num_tenants=21,
    experiment_hours=3.0,
    mean_interarrival_seconds=120.0,
    simulation_days=1.0,
    durability_days=60.0,
    num_blocks=4_000,
    datacenter_scale=0.15,
    repetitions=1,
)

#: An even smaller configuration used by unit tests.
TINY_SCALE = ExperimentScale(
    num_servers=12,
    num_tenants=8,
    experiment_hours=0.15,
    mean_interarrival_seconds=60.0,
    simulation_days=0.5,
    durability_days=20.0,
    num_blocks=400,
    datacenter_scale=0.05,
    repetitions=1,
)
