"""Declarative experiment scenarios and the scenario registry.

A :class:`ScenarioSpec` captures everything a figure-reproducing experiment
needs — which datacenter, at what scale, which policy variants, over which
utilization levels — so a figure is data rather than a bespoke ``run_*``
function.  Registered specs can be listed and executed by name through the
CLI (``repro run-scenario --list``); user-defined scenarios register the
same way the built-in ones do.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.harness.config import ExperimentScale, QUICK_SCALE
from repro.traces.scaling import ScalingMethod

#: Scenario kinds the harness knows how to run; each maps to one runner in
#: :mod:`repro.harness.runners`.
SCENARIO_KINDS = (
    "durability",
    "availability",
    "scheduling_sweep",
    "fleet_improvement",
    "scheduling_testbed",
    "storage_testbed",
    "continuous",
    "failure_storm",
    "heterogeneous_fleet",
    "antagonist",
    "predictor_ablation",
)


@dataclass(frozen=True)
class ScenarioSpec:
    """One experiment scenario, declaratively.

    Attributes:
        name: unique scenario identifier (registry key).
        kind: which runner executes the scenario (see :data:`SCENARIO_KINDS`).
        description: one-line human summary.
        figure: paper figure(s) the scenario reproduces, e.g. ``"15"``.
        datacenter: fleet preset to build (``DC-0`` .. ``DC-9``).
        scale: cluster/workload/duration scale knobs.
        variants: policy variants to compare, in run order.
        replication_levels: replication factors for the storage scenarios.
        utilization_levels: target fleet utilizations to sweep.
        scalings: trace scaling methods to sweep.
        max_tenants: keep only the first N tenants (sorted by id).
        servers_per_tenant_limit: keep only the first N servers per tenant.
        seed: default random seed (overridable at run time).
        params: kind-specific extras (burst rates, access rates, ...).
    """

    name: str
    kind: str
    description: str = ""
    figure: str = ""
    datacenter: str = "DC-9"
    scale: ExperimentScale = QUICK_SCALE
    variants: Tuple[str, ...] = ()
    replication_levels: Tuple[int, ...] = (3, 4)
    utilization_levels: Tuple[float, ...] = ()
    scalings: Tuple[ScalingMethod, ...] = (ScalingMethod.LINEAR,)
    max_tenants: Optional[int] = None
    servers_per_tenant_limit: Optional[int] = None
    seed: int = 0
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a scenario needs a name")
        if self.kind not in SCENARIO_KINDS:
            raise ValueError(
                f"unknown scenario kind {self.kind!r}; expected one of "
                f"{', '.join(SCENARIO_KINDS)}"
            )

    def param(self, key: str, default: Any = None) -> Any:
        """A kind-specific parameter, with a default."""
        return self.params.get(key, default)

    def with_overrides(self, **changes: Any) -> "ScenarioSpec":
        """A copy of the spec with some fields replaced."""
        return replace(self, **changes)


_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(
    spec: ScenarioSpec, replace_existing: bool = False
) -> ScenarioSpec:
    """Add a scenario to the registry; names must be unique."""
    if not replace_existing and spec.name in _REGISTRY:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise KeyError(f"unknown scenario {name!r}; registered: {known}") from None


def scenario_names() -> list[str]:
    """All registered scenario names, sorted."""
    return sorted(_REGISTRY)


def iter_scenarios() -> Iterator[ScenarioSpec]:
    """Registered scenarios in name order."""
    for name in scenario_names():
        yield _REGISTRY[name]
