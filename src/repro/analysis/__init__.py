"""Signal analysis and characterization of primary-tenant behaviour.

This package implements Section 3 of the paper: the FFT-based periodicity
analysis, the periodic / constant / unpredictable pattern classifier, CDF
helpers, and the characterization routines behind Figures 1 through 6.
"""

from repro.analysis.fft import FrequencyProfile, compute_spectrum
from repro.analysis.classification import (
    ClassificationThresholds,
    classify_trace,
    classify_tenants,
)
from repro.analysis.cdf import empirical_cdf, cdf_at, fraction_at_or_below
from repro.analysis.characterization import (
    DatacenterCharacterization,
    ReimageGroup,
    characterize_datacenter,
    characterize_fleet,
    reimage_group_changes,
    split_into_frequency_groups,
)

__all__ = [
    "FrequencyProfile",
    "compute_spectrum",
    "ClassificationThresholds",
    "classify_trace",
    "classify_tenants",
    "empirical_cdf",
    "cdf_at",
    "fraction_at_or_below",
    "DatacenterCharacterization",
    "ReimageGroup",
    "characterize_datacenter",
    "characterize_fleet",
    "reimage_group_changes",
    "split_into_frequency_groups",
]
