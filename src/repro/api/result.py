"""The uniform result envelope returned by :func:`repro.api.run`.

Every scenario kind used to return one of six unrelated dataclasses that the
CLI, the benchmark emitter, and the diff gate each special-cased.  A
:class:`RunResult` wraps whichever payload a run produced together with the
run's identity (spec snapshot, effective seed), its wall-clock, and the
per-cell timings the executor recorded, and exposes the uniform protocol
every consumer speaks:

* :meth:`to_jsonable` — the exact JSON document ``repro run-scenario
  --json`` prints (deterministic except for ``wall_clock_seconds``);
* :meth:`fingerprint` — a digest of the deterministic part, so "two runs
  produced bit-identical results" is one string comparison regardless of
  kind, worker count, or process;
* :meth:`headline` / :meth:`render` — the payload's own fingerprint summary
  and figure table (see :mod:`repro.harness.results`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.harness.cells import CellTiming
from repro.harness.results import result_to_jsonable
from repro.harness.spec import ScenarioSpec
from repro.simulation.metrics import MetricRegistry


@dataclass
class RunResult:
    """One executed scenario: identity, payload, and timings.

    Attributes:
        scenario: name of the spec that ran (after any overrides).
        kind: the scenario kind (one of ``SCENARIO_KINDS``).
        seed: the effective seed the run used.
        spec: snapshot of the exact spec that ran.
        payload: the kind-specific result dataclass.
        wall_clock_seconds: end-to-end duration of the run.
        workers: how many worker processes executed the cell grid (1 =
            serial; results are bit-identical either way).
        cell_timings: wall-clock per executed cell, in cell order.
        metrics: the harness registry holding the run's metric streams.
    """

    scenario: str
    kind: str
    seed: int
    spec: ScenarioSpec
    payload: Any
    wall_clock_seconds: float
    workers: int = 1
    cell_timings: List[CellTiming] = field(default_factory=list)
    metrics: Optional[MetricRegistry] = None

    def to_jsonable(self) -> Dict[str, Any]:
        """The run as JSON-safe data — the ``--json`` document.

        Worker count and per-cell timings are deliberately excluded: the
        document must be identical for a serial and a parallel run of the
        same (spec, seed), so everything in it except ``wall_clock_seconds``
        is deterministic.

        Runs that tick the scheduler hot-path cache counters
        (``waves_coalesced`` / ``frontier_cache_hits``) also carry a
        ``scheduler_counters`` section — deterministic observability that,
        like ``wall_clock_seconds``, stays outside :meth:`fingerprint` so
        historical fingerprints are unchanged by its presence.
        """
        doc = {
            "scenario": self.scenario,
            "kind": self.kind,
            "seed": self.seed,
            "wall_clock_seconds": self.wall_clock_seconds,
            "result": result_to_jsonable(self.payload),
        }
        if self.metrics is not None:
            counters = {
                name: counter.value
                for name, counter in sorted(self.metrics.counters.items())
                if name.startswith("scheduler.")
            }
            if counters:
                doc["scheduler_counters"] = counters
        return doc

    def fingerprint(self) -> str:
        """SHA-256 over the deterministic part of :meth:`to_jsonable`.

        Two runs of the same (spec, seed) — serial, ``workers=4``, another
        machine — must produce the same fingerprint; any drift means the
        simulation itself diverged.
        """
        data = self.to_jsonable()
        data.pop("wall_clock_seconds")
        data.pop("scheduler_counters", None)
        canonical = json.dumps(data, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def headline(self) -> Any:
        """The payload's fingerprint-relevant summary (kind-defined)."""
        return self.payload.headline()

    def render(self) -> str:
        """The payload's figure table (kind-defined); ``repr`` fallback."""
        render = getattr(self.payload, "render", None)
        if callable(render):
            return render()
        return repr(self.payload)

    def cell_seconds(self) -> Dict[str, float]:
        """Per-cell wall-clock keyed by cell label."""
        return {timing.key: timing.seconds for timing in self.cell_timings}
