"""Tests for the Resource Manager scheduling modes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.node_manager import NodeManager
from repro.cluster.resource_manager import (
    ContainerRequest,
    ResourceManager,
    SchedulerMode,
)
from repro.cluster.resources import Resource
from repro.cluster.server import SimulatedServer
from repro.simulation.random import RandomSource
from repro.traces.datacenter import PrimaryTenant, Server
from repro.traces.utilization import UtilizationPattern, UtilizationTrace


def make_simulated_server(
    server_id: str, utilization: float, tenant_id: str | None = None
) -> SimulatedServer:
    tenant_id = tenant_id or f"tenant-{server_id}"
    tenant = PrimaryTenant(
        tenant_id=tenant_id,
        environment=f"env-{tenant_id}",
        machine_function="mf",
        trace=UtilizationTrace(np.full(100, utilization), UtilizationPattern.CONSTANT),
        pattern=UtilizationPattern.CONSTANT,
    )
    server = Server(server_id, tenant_id, cores=12, memory_gb=32.0)
    tenant.servers.append(server)
    return SimulatedServer(server, tenant)


def build_rm(
    mode: SchedulerMode,
    utilizations: dict[str, float],
    labels: dict[str, str] | None = None,
) -> ResourceManager:
    rm = ResourceManager(mode=mode, rng=RandomSource(1))
    for server_id, utilization in utilizations.items():
        sim = make_simulated_server(server_id, utilization)
        node_manager = NodeManager(sim, primary_aware=mode is not SchedulerMode.STOCK)
        rm.register_node(node_manager, label=(labels or {}).get(server_id))
    rm.process_heartbeats(0.0)
    return rm


def request(labels: list[str] | None = None) -> ContainerRequest:
    return ContainerRequest(
        job_id="job", task_id="task", allocation=Resource(1.0, 2.0),
        node_labels=labels or [],
    )


class TestRegistration:
    def test_duplicate_registration_rejected(self):
        rm = build_rm(SchedulerMode.PRIMARY_AWARE, {"a": 0.2})
        sim = make_simulated_server("a", 0.2)
        with pytest.raises(ValueError):
            rm.register_node(NodeManager(sim))

    def test_unknown_server_lookup_raises(self):
        rm = build_rm(SchedulerMode.PRIMARY_AWARE, {"a": 0.2})
        with pytest.raises(KeyError):
            rm.node_manager("missing")

    def test_labels_ignored_outside_history_mode(self):
        rm = build_rm(
            SchedulerMode.PRIMARY_AWARE, {"a": 0.2}, labels={"a": "constant-0"}
        )
        container = rm.schedule(request(labels=["some-other-label"]), 0.0)
        assert container is not None


class TestScheduling:
    def test_schedules_to_server_with_capacity(self):
        rm = build_rm(SchedulerMode.PRIMARY_AWARE, {"a": 0.2, "b": 0.2})
        container = rm.schedule(request(), 0.0)
        assert container is not None
        assert container.server_id in {"a", "b"}
        assert rm.metrics.counter_value("containers_launched") == 1

    def test_returns_none_when_nothing_fits(self):
        rm = build_rm(SchedulerMode.PRIMARY_AWARE, {"a": 0.9})
        big_request = ContainerRequest("job", "task", Resource(10.0, 20.0))
        assert rm.schedule(big_request, 0.0) is None
        assert rm.metrics.counter_value("requests_unsatisfied") == 1

    def test_capacity_exhaustion_flag_lifecycle(self):
        """An unsatisfied wave marks its shape exhausted until capacity can
        return (heartbeat refresh / completion); other shapes are unaffected."""
        rm = build_rm(SchedulerMode.PRIMARY_AWARE, {"a": 0.2})
        big = Resource(10.0, 20.0)
        small = Resource(1.0, 2.0)
        assert not rm.capacity_exhausted(big, [])
        assert rm.schedule(ContainerRequest("job", "t", big), 0.0) is None
        assert rm.capacity_exhausted(big, [])
        # A different allocation (or label set) is a different shape.
        assert not rm.capacity_exhausted(small, [])
        assert not rm.capacity_exhausted(big, ["constant-0"])
        # The next heartbeat may change the view, so the flag clears.
        rm.process_heartbeats(30.0)
        assert not rm.capacity_exhausted(big, [])

    def test_completion_clears_capacity_exhaustion(self):
        rm = build_rm(SchedulerMode.PRIMARY_AWARE, {"a": 0.2})
        # 12 - 2.4 (primary) - 4 (reserve) leaves 5 harvestable cores.
        placed = [
            rm.schedule(ContainerRequest("job", f"t{i}", Resource(1.0, 2.0)), 0.0)
            for i in range(5)
        ]
        assert all(placed)
        assert rm.schedule(ContainerRequest("job", "t5", Resource(1.0, 2.0)), 0.0) is None
        assert rm.capacity_exhausted(Resource(1.0, 2.0), [])
        rm.complete(placed[0], 1.0)
        assert not rm.capacity_exhausted(Resource(1.0, 2.0), [])
        assert rm.schedule(ContainerRequest("job", "t6", Resource(1.0, 2.0)), 1.0)

    def test_history_mode_honours_labels(self):
        rm = build_rm(
            SchedulerMode.HISTORY,
            {"a": 0.2, "b": 0.2},
            labels={"a": "constant-0", "b": "periodic-0"},
        )
        # Server "a" offers 12 - 3 (primary) - 4 (reserve) = 5 harvestable
        # cores; every one-core labelled request must land there.
        for _ in range(5):
            container = rm.schedule(request(labels=["constant-0"]), 0.0)
            assert container is not None
            assert container.server_id == "a"
        # Once the labelled class is full the request cannot be satisfied.
        assert rm.schedule(request(labels=["constant-0"]), 0.0) is None

    def test_history_mode_unknown_label_falls_back(self):
        rm = build_rm(
            SchedulerMode.HISTORY, {"a": 0.2}, labels={"a": "constant-0"}
        )
        container = rm.schedule(request(labels=["missing-label"]), 0.0)
        assert container is not None

    def test_stock_mode_prefers_most_available(self):
        rm = build_rm(SchedulerMode.STOCK, {"busy": 0.0, "idle": 0.0})
        # Pre-load one server so the other has strictly more available cores.
        first = rm.schedule(request(), 0.0)
        rm.process_heartbeats(1.0)
        second = rm.schedule(request(), 1.0)
        assert first is not None and second is not None
        assert first.server_id != second.server_id

    def test_completion_releases_resources(self):
        rm = build_rm(SchedulerMode.PRIMARY_AWARE, {"a": 0.2})
        container = rm.schedule(request(), 0.0)
        assert container is not None
        rm.complete(container, 10.0)
        assert rm.metrics.counter_value("containers_completed") == 1
        # Releasing makes room for another container immediately.
        assert rm.schedule(request(), 10.0) is not None


class TestHeartbeatsAndUtilization:
    def test_heartbeats_report_kills(self):
        rm = build_rm(SchedulerMode.PRIMARY_AWARE, {"a": 0.25})
        server = rm.node_manager("a").server
        for i in range(5):
            launched = rm.schedule(request(), 0.0)
            assert launched is not None
        server.set_utilization_override(lambda t: 0.7)
        killed = rm.process_heartbeats(10.0)
        assert killed
        assert rm.metrics.counter_value("containers_killed") == len(killed)

    def test_average_utilizations(self):
        rm = build_rm(SchedulerMode.PRIMARY_AWARE, {"a": 0.2, "b": 0.4})
        assert rm.average_primary_utilization(0.0) == pytest.approx(0.3)
        total = rm.average_total_utilization(0.0)
        assert total >= 0.3

    def test_class_capacity_and_utilization(self):
        rm = build_rm(
            SchedulerMode.HISTORY,
            {"a": 0.2, "b": 0.6},
            labels={"a": "c0", "b": "c1"},
        )
        assert rm.class_capacity_cores("c0") == pytest.approx(12.0)
        assert rm.current_class_utilization("c1", 0.0) == pytest.approx(0.6)
        assert rm.current_class_utilization("missing", 0.0) == 0.0

    def test_empty_rm_statistics(self):
        rm = ResourceManager(mode=SchedulerMode.HISTORY)
        assert rm.average_primary_utilization(0.0) == 0.0
        assert rm.average_total_utilization(0.0) == 0.0


class TestScheduleWavesParity:
    """Coalesced pump batches vs the sequential AM loop they replaced."""

    @staticmethod
    def _scalar_pump(rm, waves, time):
        """Starvation check, then one-by-one placement — the old pump order."""
        results = []
        for requests in waves:
            first = requests[0]
            if rm.capacity_exhausted(first.allocation, first.node_labels):
                results.append([None] * len(requests))
                continue
            results.append([rm.schedule(r, time) for r in requests])
        return results

    @staticmethod
    def _ids(results):
        return [[c.server_id if c else None for c in wave] for wave in results]

    @staticmethod
    def _wave(name, count, alloc, labels=None):
        return [
            ContainerRequest("job", f"{name}-{i}", alloc, node_labels=labels or [])
            for i in range(count)
        ]

    def _mixed_waves(self):
        small = Resource(1.0, 2.0)
        medium = Resource(2.0, 4.0)
        huge = Resource(64.0, 128.0)  # never fits: starves its shape
        return [
            self._wave("a", 3, medium),
            # 40 placements leave the medium entry further behind than
            # WaveBatch.REPLAY_LIMIT: wave "c" exercises the mask rebuild.
            self._wave("b", 40, small),
            self._wave("starve", 2, huge),
            self._wave("c", 4, medium),
            # The small entry is only a few placements behind: log replay.
            self._wave("d", 3, small),
            self._wave("starve2", 3, huge),  # same starved shape: skipped
            self._wave("e", 2, small),
        ]

    def test_matches_sequential_oracle_with_starved_shapes(self):
        utils = {f"s{i:02d}": 0.1 + 0.05 * (i % 4) for i in range(12)}
        batch_rm = build_rm(SchedulerMode.PRIMARY_AWARE, utils)
        scalar_rm = build_rm(SchedulerMode.PRIMARY_AWARE, utils)
        batched = batch_rm.schedule_waves(self._mixed_waves(), 0.0)
        sequential = self._scalar_pump(scalar_rm, self._mixed_waves(), 0.0)
        assert self._ids(batched) == self._ids(sequential)
        assert batched[2] == [None, None]
        assert batched[5] == [None, None, None]
        # Identical random stream position and starvation accounting.
        assert batch_rm._rng.uniform() == scalar_rm._rng.uniform()
        assert batch_rm.metrics.counter_value(
            "requests_unsatisfied"
        ) == scalar_rm.metrics.counter_value("requests_unsatisfied")
        assert batch_rm.metrics.counter_value("waves_coalesced") >= 2

    def test_label_permutations_coalesce_and_match_oracle(self):
        utils = {f"s{i}": 0.15 for i in range(8)}
        labels = {f"s{i}": ("constant-0" if i % 2 else "diurnal-1") for i in range(8)}

        def waves():
            alloc = Resource(1.0, 2.0)
            return [
                self._wave("x", 3, alloc, ["constant-0", "diurnal-1"]),
                self._wave("y", 3, alloc, ["diurnal-1", "constant-0"]),
            ]

        batch_rm = build_rm(SchedulerMode.HISTORY, utils, labels=labels)
        scalar_rm = build_rm(SchedulerMode.HISTORY, utils, labels=labels)
        batched = batch_rm.schedule_waves(waves(), 0.0)
        sequential = self._scalar_pump(scalar_rm, waves(), 0.0)
        assert self._ids(batched) == self._ids(sequential)
        assert batch_rm._rng.uniform() == scalar_rm._rng.uniform()
        # A permuted label list is the same OR-of-label masks: the second
        # wave reuses the first wave's entry instead of rebuilding it.
        assert batch_rm.metrics.counter_value("waves_coalesced") == 1

    def test_waves_coalesced_counts_only_within_a_batch(self):
        rm = build_rm(SchedulerMode.PRIMARY_AWARE, {f"s{i}": 0.1 for i in range(4)})
        alloc = Resource(1.0, 2.0)
        batch = rm.begin_batch(0.0)
        batch.schedule(self._wave("a", 2, alloc))
        assert rm.metrics.counter_value("waves_coalesced") == 0
        batch.schedule(self._wave("b", 2, alloc))
        assert rm.metrics.counter_value("waves_coalesced") == 1
        # A fresh batch starts from fresh masks; reuse never spans ticks.
        rm.begin_batch(1.0).schedule(self._wave("c", 1, alloc))
        assert rm.metrics.counter_value("waves_coalesced") == 1
