"""Figure 16: failed accesses across the utilization spectrum.

With linear utilization scaling, HDFS-H shows no data unavailability up to
roughly 40-50% average utilization and low unavailability beyond, whereas
HDFS-Stock starts failing accesses earlier and harder; unavailability grows
quickly for everyone as utilization approaches the access threshold (about
two thirds).  HDFS-H at three-way replication is competitive with HDFS-Stock
at four-way replication for most utilization levels.
"""

from __future__ import annotations

from repro.experiments.availability import run_availability_experiment
from repro.experiments.report import format_table
from repro.traces.scaling import ScalingMethod

from conftest import BENCH_SCALE, run_once

UTILIZATION_LEVELS = (0.3, 0.4, 0.5, 0.66, 0.75)


def test_fig16_availability(benchmark):
    result = run_once(
        benchmark,
        run_availability_experiment,
        "DC-9",
        UTILIZATION_LEVELS,
        (3, 4),
        ScalingMethod.LINEAR,
        BENCH_SCALE,
        1,
        2000,
    )

    rows = []
    for util in UTILIZATION_LEVELS:
        rows.append([
            f"{util:.2f}",
            f"{100 * result.failed_fraction('HDFS-Stock', 3, util):.2f}%",
            f"{100 * result.failed_fraction('HDFS-H', 3, util):.2f}%",
            f"{100 * result.failed_fraction('HDFS-Stock', 4, util):.2f}%",
            f"{100 * result.failed_fraction('HDFS-H', 4, util):.2f}%",
        ])
    print()
    print(format_table(
        ["avg util", "Stock R3", "HDFS-H R3", "Stock R4", "HDFS-H R4"],
        rows,
        title="Figure 16: failed accesses vs utilization (linear scaling)",
    ))

    # No unavailability for HDFS-H at low-to-moderate utilization.
    assert result.failed_fraction("HDFS-H", 3, 0.3) == 0.0
    assert result.failed_fraction("HDFS-H", 3, 0.4) == 0.0
    # HDFS-H never does worse than HDFS-Stock at the same replication level.
    for util in UTILIZATION_LEVELS:
        assert (
            result.failed_fraction("HDFS-H", 3, util)
            <= result.failed_fraction("HDFS-Stock", 3, util) + 0.005
        )
        assert (
            result.failed_fraction("HDFS-H", 4, util)
            <= result.failed_fraction("HDFS-Stock", 4, util) + 0.005
        )
    # Unavailability grows with utilization for the stock placement.
    assert (
        result.failed_fraction("HDFS-Stock", 3, 0.75)
        >= result.failed_fraction("HDFS-Stock", 3, 0.4)
    )
    # Four-way replication helps the stock placement but HDFS-H at R=3 stays
    # competitive with it over the low-to-moderate part of the spectrum.
    assert (
        result.failed_fraction("HDFS-H", 3, 0.5)
        <= result.failed_fraction("HDFS-Stock", 4, 0.5) + 0.005
    )
