"""The Name Node: block namespace, placement, access, and recovery.

The NameNode owns the block namespace, asks its placement policy for replica
destinations when a client creates a block, answers block accesses by listing
the servers holding healthy replicas (excluding busy ones when primary-tenant
aware), and re-creates replicas destroyed by reimages subject to the
replication rate limit.

Three awareness levels match the paper's HDFS variants:

* ``HDFS-Stock`` — ``primary_aware=False`` with :class:`StockPlacementPolicy`;
* ``HDFS-PT`` — ``primary_aware=True`` with :class:`StockPlacementPolicy`;
* ``HDFS-H`` — ``primary_aware=True`` with :class:`HistoryPlacementPolicy`.

All block state lives in a columnar :class:`~repro.storage.block_table
.BlockTable` (one numpy row per block); the hot paths — creation, batched
access checking, reimage replay, and recovery candidate picks — run as mask
reductions over it, while :attr:`blocks` hands out per-object
:class:`~repro.storage.block.BlockView` wrappers that read and write the
same arrays.  Every array expression reproduces the scalar arithmetic and
random-draw ordering of the per-object path it replaced, so fixed seeds
yield bit-identical experiment results
(see ``tests/test_storage_block_table.py``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.simulation.metrics import MetricRegistry
from repro.simulation.random import RandomSource
from repro.storage.block import BlockView
from repro.storage.block_table import BlockNamespace, BlockTable
from repro.storage.datanode import DataNode
from repro.storage.placement_policies import PlacementContext, PlacementPolicy
from repro.storage.replication import ReplicationManager
from repro.traces.matrix import TraceMatrix


class AccessResult(str, enum.Enum):
    """Outcome of a block access attempt."""

    SERVED = "served"
    UNAVAILABLE = "unavailable"
    LOST = "lost"


@dataclass
class CreateResult:
    """Outcome of a block creation."""

    block: Optional[BlockView]
    placed_replicas: int
    requested_replicas: int

    @property
    def fully_replicated(self) -> bool:
        """Whether the desired replication level was achieved at creation."""
        return (
            self.block is not None
            and self.placed_replicas >= self.requested_replicas
        )


@dataclass
class AccessBatch:
    """Outcome of one :meth:`NameNode.access_blocks` round.

    Attributes:
        served: accesses served from a healthy (and, when primary-aware,
            non-busy) replica.
        failed: accesses denied because every healthy replica was busy.
        lost: accesses that hit a lost block.
        io_load: per-server secondary-I/O fraction added by the served
            accesses, indexed like :attr:`NameNode.server_ids`.
    """

    served: int
    failed: int
    lost: int
    io_load: np.ndarray


class NameNode:
    """Block namespace manager with pluggable placement policy."""

    def __init__(
        self,
        datanodes: Iterable[DataNode],
        placement_policy: PlacementPolicy,
        primary_aware: bool = True,
        default_replication: int = 3,
        rng: Optional[RandomSource] = None,
        metrics: Optional[MetricRegistry] = None,
        replication_manager: Optional[ReplicationManager] = None,
        trace_matrix: Optional[TraceMatrix] = None,
    ) -> None:
        self._datanodes: Dict[str, DataNode] = {dn.server_id: dn for dn in datanodes}
        if not self._datanodes:
            raise ValueError("a NameNode needs at least one DataNode")
        self._policy = placement_policy
        self._primary_aware = primary_aware
        if default_replication <= 0:
            raise ValueError("default_replication must be positive")
        self._default_replication = default_replication
        self._rng = rng or RandomSource(0)
        self.metrics = metrics or MetricRegistry()
        self._replication = replication_manager or ReplicationManager()
        self._block_counter = 0
        #: Cached count of servers with free space, invalidated whenever
        #: used space changes; the re-replication loop reads it every round.
        self._healthy_server_count: Optional[int] = None
        self._init_vector_state(trace_matrix)

    def _init_vector_state(self, trace_matrix: Optional[TraceMatrix]) -> None:
        """Build the columnar server/block state used by the hot paths.

        Busy checks and space filtering run once per block creation, recovery
        candidate pick, and access; evaluating them per DataNode in Python
        dominates the storage experiments.  The NameNode therefore keeps a
        per-server view — tenant trace row, busy threshold, capacity, and a
        mirror of used space — as flat numpy arrays, updated on the same
        mutations that update the DataNodes themselves, and a
        :class:`BlockTable` holding one row per block.
        """
        dns = list(self._datanodes.values())
        self._datanode_list: List[DataNode] = dns
        self._server_ids: List[str] = [dn.server_id for dn in dns]
        self._index_of_server: Dict[str, int] = {
            sid: i for i, sid in enumerate(self._server_ids)
        }
        if trace_matrix is None:
            tenants, seen = [], set()
            for dn in dns:
                if dn.tenant.tenant_id not in seen:
                    seen.add(dn.tenant.tenant_id)
                    tenants.append(dn.tenant)
            trace_matrix = TraceMatrix(tenants)
        self._matrix = trace_matrix
        self._server_rows = np.array(
            [self._matrix.row_of_tenant(dn.tenant.tenant_id) for dn in dns],
            dtype=np.int64,
        )
        self._server_aware = np.array([dn.primary_aware for dn in dns], dtype=bool)
        self._server_thresholds = np.array([dn.busy_threshold for dn in dns])
        self._server_capacity = np.array([dn.capacity_gb for dn in dns])
        self._server_used = np.array([dn.used_space_gb for dn in dns])
        self._table = BlockTable(
            self._server_ids, [dn.tenant_id for dn in dns]
        )
        self._namespace = BlockNamespace(self._table)
        self._placement_context = PlacementContext.build(
            self._server_ids, [dn.server.rack for dn in dns]
        )

    @property
    def trace_matrix(self) -> TraceMatrix:
        """The vectorized utilization view over the DataNodes' tenants."""
        return self._matrix

    @property
    def block_table(self) -> BlockTable:
        """The columnar substrate every block hot path runs on."""
        return self._table

    @property
    def server_ids(self) -> List[str]:
        """Server ids in column order (the order io-load vectors use)."""
        return list(self._server_ids)

    # -- namespace ----------------------------------------------------------

    @property
    def blocks(self) -> Mapping[str, BlockView]:
        """All blocks ever created, keyed by id (live views, creation order)."""
        return self._namespace

    @property
    def datanodes(self) -> Dict[str, DataNode]:
        """All registered DataNodes keyed by server id."""
        return self._datanodes

    def lost_blocks(self) -> List[BlockView]:
        """Blocks whose every replica has been destroyed."""
        return [self._table.view(int(row)) for row in self._table.lost_rows()]

    def under_replicated_blocks(self) -> List[BlockView]:
        """Blocks below their target replication but not lost."""
        return [
            self._table.view(int(row))
            for row in self._table.under_replicated_rows()
        ]

    # -- block creation ----------------------------------------------------------

    def create_block(
        self,
        time: float,
        replication: Optional[int] = None,
        creating_server_id: Optional[str] = None,
        size_gb: float = 0.25,
    ) -> CreateResult:
        """Create a block and place its replicas via the placement policy.

        Busy servers are excluded from the candidate set when primary-aware
        (the NameNode stops using busy DataNodes as destinations).
        """
        replication = replication or self._default_replication
        block_ids = self.create_blocks(
            time, [creating_server_id], replication=replication, size_gb=size_gb
        )
        block_id = block_ids[0]
        if block_id is None:
            return CreateResult(None, 0, replication)
        row = self._table.row_of(block_id)
        return CreateResult(
            self._table.view(row), self._table.healthy_count_of(row), replication
        )

    def create_blocks(
        self,
        time: float,
        creating_server_ids: Sequence[Optional[str]],
        replication: Optional[int] = None,
        size_gb: float = 0.25,
    ) -> List[Optional[str]]:
        """Create one block per entry of ``creating_server_ids``, batched.

        The one creation path (:meth:`create_block` is a batch of one):
        busy servers (when primary-aware) and servers without space are
        excluded up front in one vectorized pass — the busy mask is a pure
        function of ``time``, so it is computed once and the exclusion mask
        is refreshed scalar-wise as replicas land — and the metric counters
        and re-replication enqueues are applied in one batch at the end.
        Returns the id of each created block (``None`` where placement
        found no candidates).
        """
        replication = replication or self._default_replication
        if size_gb <= 0:
            raise ValueError("block size must be positive")
        if replication <= 0:
            raise ValueError("target_replication must be positive")
        busy = self._busy_mask(time) if self._primary_aware else None
        # The exclusion mask is a pure function of (busy at ``time``, used
        # space); within the batch only the stores below change used space,
        # so maintain the mask incrementally — one scalar refresh per placed
        # replica instead of three fleet-wide array ops per block.
        excluded_mask = ~self._space_mask(size_gb)
        if busy is not None:
            excluded_mask |= busy
        exclude_ids: Optional[List[str]] = None
        candidates: Optional[np.ndarray] = None
        results: List[Optional[str]] = []
        pending: List[str] = []
        created = failed = 0
        for creating_server_id in creating_server_ids:
            self._block_counter += 1
            block_id = f"block-{self._block_counter}"
            if candidates is None:
                candidates = np.flatnonzero(~excluded_mask)
                exclude_ids = [
                    self._server_ids[i] for i in np.flatnonzero(excluded_mask)
                ]
            chosen = self._choose_placement(
                replication,
                creating_server_id,
                size_gb,
                excluded_mask,
                exclude_ids,
                candidates,
            )
            if not chosen:
                failed += 1
                results.append(None)
                continue
            row = self._table.append(block_id, size_gb, replication)
            for server_index in chosen:
                self._store_replica_at(row, server_index, time)
                free = float(
                    self._server_capacity[server_index]
                    - self._server_used[server_index]
                )
                now_excluded = not (size_gb <= max(0.0, free) + 1e-9) or bool(
                    busy is not None and busy[server_index]
                )
                if bool(excluded_mask[server_index]) != now_excluded:
                    excluded_mask[server_index] = now_excluded
                    exclude_ids = None
                    candidates = None
            created += 1
            if self._table.healthy_count_of(row) < replication:
                pending.append(block_id)
            results.append(block_id)
        if created:
            self.metrics.counter("blocks_created").increment(created)
        if failed:
            self.metrics.counter("block_creations_failed").increment(failed)
        self._replication.enqueue_many(pending)
        return results

    def _choose_placement(
        self,
        replication: int,
        creating_server_id: Optional[str],
        size_gb: float,
        excluded_mask: np.ndarray,
        exclude_ids: Optional[List[str]] = None,
        candidates: Optional[np.ndarray] = None,
    ) -> List[int]:
        """Replica destinations as server indices, via the policy.

        Policies exposing the vectorized ``choose_server_indices`` entry
        point (the stock rule) receive the exclusion mask directly; the
        grid-based history policy keeps the id-based interface, fed from the
        same mask (``exclude_ids`` / ``candidates`` let batch callers reuse
        materialized forms of it while the mask is unchanged).
        """
        fast = getattr(self._policy, "choose_server_indices", None)
        if fast is not None:
            creating_index = (
                self._index_of_server.get(creating_server_id)
                if creating_server_id is not None
                else None
            )
            return fast(
                replication,
                creating_index,
                excluded_mask,
                self._placement_context,
                candidates,
            )
        if exclude_ids is None:
            exclude_ids = [self._server_ids[i] for i in np.flatnonzero(excluded_mask)]
        chosen = self._policy.choose_servers(
            replication,
            creating_server_id,
            self._datanodes,
            size_gb,
            exclude=exclude_ids,
            space_prefiltered=True,
        )
        return [self._index_of_server[sid] for sid in chosen]

    def _store_replica_at(self, row: int, server_index: int, time: float) -> None:
        size_gb = self._table.size_of(row)
        datanode = self._datanode_list[server_index]
        datanode.store_replica_id(self._table.id_of(row), size_gb)
        self._server_used[server_index] += size_gb
        self._healthy_server_count = None
        self._table.add_replica(row, server_index, time)

    def _busy_mask(self, time: float) -> np.ndarray:
        """Per-server busy flags, evaluated as one trace-matrix gather."""
        util = self._matrix.utilization_rows(self._server_rows, time)
        return self._server_aware & (util > self._server_thresholds)

    def _space_mask(self, size_gb: float) -> np.ndarray:
        """Per-server flags for ``DataNode.has_space_for(size_gb)``."""
        free = np.maximum(0.0, self._server_capacity - self._server_used)
        return size_gb <= free + 1e-9

    # -- access -------------------------------------------------------------------

    def access_block(self, block_id: str, time: float) -> AccessResult:
        """Attempt to read a block.

        A primary-aware NameNode only lists non-busy replicas; the access
        fails (``UNAVAILABLE``) when all healthy replicas sit on busy servers.
        A primary-oblivious deployment serves the access regardless, paying
        with primary-tenant interference instead (that cost is modelled by
        the latency model, not here).
        """
        row = self._table.get_row(block_id)
        if row is None:
            raise KeyError(f"unknown block {block_id}")
        self._table.record_access(row)
        if self._table.lost[row]:
            self.metrics.counter("accesses_lost_block").increment()
            return AccessResult.LOST

        healthy = self._table.healthy_servers_of(row)
        if not len(healthy):
            self.metrics.counter("accesses_lost_block").increment()
            return AccessResult.LOST

        if not self._primary_aware:
            self.metrics.counter("accesses_served").increment()
            return AccessResult.SERVED

        busy = self._busy_mask(time)
        if not busy[healthy].all():
            self.metrics.counter("accesses_served").increment()
            return AccessResult.SERVED
        self.metrics.counter("accesses_failed").increment()
        return AccessResult.UNAVAILABLE

    #: Integer codes used by :meth:`check_accesses`, index-aligned with the
    #: order the batch path reports them in.
    ACCESS_CODES = (AccessResult.SERVED, AccessResult.UNAVAILABLE, AccessResult.LOST)

    def check_accesses(
        self,
        block_ids: Sequence[str],
        times: Union[Sequence[float], np.ndarray],
    ) -> np.ndarray:
        """Evaluate a whole batch of accesses as numpy mask reductions.

        Semantically identical to calling :meth:`access_block` for each
        ``(block_ids[i], times[i])`` pair — including the metric counters —
        but the per-replica busy checks collapse into one ``(accesses x
        replicas)`` trace-matrix lookup over the block table's replica
        columns.  Returns an ``int8`` array whose values index
        :data:`ACCESS_CODES` (0 = served, 1 = unavailable, 2 = lost).
        """
        times = np.asarray(times, dtype=float)
        if len(block_ids) != len(times):
            raise ValueError("block_ids and times must have the same length")
        n = len(block_ids)
        codes = np.zeros(n, dtype=np.int8)
        if n == 0:
            return codes

        rows = np.empty(n, dtype=np.int64)
        for i, block_id in enumerate(block_ids):
            row = self._table.get_row(block_id)
            if row is None:
                raise KeyError(f"unknown block {block_id}")
            rows[i] = row
        self._table.record_accesses(rows)

        # (accesses x slots) server-index matrix straight from the table's
        # replica columns; destroyed or empty slots are masked out.
        servers = self._table.replica_servers[rows]
        valid = (servers >= 0) & self._table.replica_healthy[rows]
        lost = ~valid.any(axis=1)
        codes[lost] = 2

        if not self._primary_aware:
            served = ~lost
        else:
            safe = np.where(valid, servers, 0)
            util = self._matrix.utilization(
                self._server_rows[safe], times[:, None]
            )
            busy = self._server_aware[safe] & (
                util > self._server_thresholds[safe]
            )
            available = valid & ~busy
            served = available.any(axis=1) & ~lost
            codes[~served & ~lost] = 1
            self.metrics.counter("accesses_failed").increment(
                int((~served & ~lost).sum())
            )
        codes[served] = 0
        self.metrics.counter("accesses_served").increment(int(served.sum()))
        if lost.any():
            self.metrics.counter("accesses_lost_block").increment(int(lost.sum()))
        return codes

    def access_blocks(
        self,
        time: float,
        count: int,
        rng: RandomSource,
        io_per_access: float = 0.05,
        sampler=None,
    ) -> AccessBatch:
        """Serve ``count`` sampled accesses at ``time``, effectfully.

        The effectful twin of :meth:`check_accesses`: each access draws one
        block (by default uniform over every block ever created, in creation
        order) and — when served — one replica to read from, consuming
        ``rng`` exactly as the per-access scalar loop did
        (``choice(block_ids)`` then ``choice(candidate_servers)``).  Access
        counters are bumped per block, and each served access scatters
        ``io_per_access`` onto the serving server's io-load column.
        Primary-aware NameNodes only read from non-busy replicas and fail
        the access when all are busy; oblivious ones read from any healthy
        replica (the interference cost is the latency model's problem).

        ``sampler`` — an access-skew sampler from
        :mod:`repro.workload.distributions` (``index(rng, n)``) — replaces
        the uniform block draw; ``None`` keeps the historical uniform
        stream bit for bit.
        """
        table = self._table
        io_load = np.zeros(table.num_servers)
        n = table.num_blocks
        if n == 0 or count <= 0:
            return AccessBatch(0, 0, 0, io_load)
        aware = self._primary_aware
        busy = self._busy_mask(time) if aware else None
        served = failed = lost = 0
        for _ in range(count):
            row = rng.integer(0, n) if sampler is None else sampler.index(rng, n)
            table.record_access(row)
            healthy = table.healthy_servers_of(row)
            if not len(healthy):
                lost += 1
                continue
            if aware:
                pool = healthy[~busy[healthy]]
                if not len(pool):
                    failed += 1
                    continue
            else:
                pool = healthy
            served += 1
            target = int(pool[rng.integer(0, len(pool))])
            io_load[target] += io_per_access
        if served:
            self.metrics.counter("accesses_served").increment(served)
        if failed:
            self.metrics.counter("accesses_failed").increment(failed)
        if lost:
            self.metrics.counter("accesses_lost_block").increment(lost)
        table.io_load += io_load
        return AccessBatch(served, failed, lost, io_load)

    # -- reimages and recovery -------------------------------------------------------

    def handle_reimage(self, server_id: str, time: float) -> List[str]:
        """A server's disk was reimaged: destroy its replicas, queue recovery.

        Returns the ids of blocks that became lost as a result.
        """
        datanode = self._datanodes.get(server_id)
        if datanode is None:
            return []
        affected = datanode.reimage()
        server_index = self._index_of_server[server_id]
        self._server_used[server_index] = 0.0
        self._healthy_server_count = None
        table = self._table
        newly_lost: List[str] = []
        # The DataNode reports its wiped replicas as a set; iterate in sorted
        # order so the re-replication queue (and every random draw downstream
        # of it) does not depend on the process's string-hash seed.
        for block_id in sorted(affected):
            row = table.get_row(block_id)
            if row is None:
                continue
            was_lost = table.is_lost(row)
            table.destroy_replica(row, server_index)
            now_lost = table.is_lost(row)
            if now_lost and not was_lost:
                newly_lost.append(block_id)
                self._replication.discard(block_id)
            elif not now_lost:
                self._replication.enqueue(block_id)
        if newly_lost:
            self.metrics.counter("blocks_lost").increment(len(newly_lost))
        if affected:
            self.metrics.counter("reimages_processed").increment()
        return newly_lost

    def run_replication(self, time: float) -> int:
        """Re-create replicas for queued blocks, subject to the rate limit.

        Returns the number of replicas restored in this round.  The busy
        mask (a pure function of ``time``) is evaluated once; the space mask
        is refreshed per pick as restored replicas consume space.
        """
        if self._healthy_server_count is None:
            # ``max(0, capacity - used) > 0`` is ``capacity - used > 0``; a
            # pure function of used space, so cache it between mutations.
            self._healthy_server_count = int(
                (self._server_capacity - self._server_used > 0).sum()
            )
        drained = self._replication.drain(time, self._healthy_server_count)
        if not drained:
            return 0
        table = self._table
        busy = self._busy_mask(time) if self._primary_aware else None
        busy_list = busy.tolist() if busy is not None else None
        order = table.sorted_server_order
        rank = table.sorted_server_rank.tolist()
        # Per-round caches: the viable mask (space ∧ ¬busy) is a pure
        # function of used space once ``time`` is fixed, so it is built once
        # per block size and refreshed scalar-wise as restored replicas
        # consume space.  Candidates are kept pre-permuted into
        # lexicographic order — matching the scalar ``choice(sorted(ids))``
        # draw — together with an inclusive prefix count of viable slots, so
        # each pick maps its bounded-integer draw past the block's replica
        # holders in O(replicas) without allocating a filtered array.
        cache: Dict[float, tuple] = {}

        def build(size_gb: float) -> tuple:
            viable = self._space_mask(size_gb)
            if busy is not None:
                viable &= ~busy
            candidates = order[viable[order]]
            prefix = np.cumsum(viable[order]).tolist()
            entry = (viable, candidates, viable.tolist(), prefix)
            cache[size_gb] = entry
            return entry

        restored = 0
        for block_id in drained:
            row = table.get_row(block_id)
            if row is None or table.is_lost(row):
                continue
            size_gb = table.size_of(row)
            missing = table.missing_of(row)
            while missing > 0:
                entry = cache.get(size_gb)
                if entry is None:
                    entry = build(size_gb)
                viable, candidates, viable_list, prefix = entry
                # Lexicographic positions of this block's holders among the
                # viable candidates; the draw index skips past them.
                positions = sorted(
                    prefix[rank[holder]] - 1
                    for holder in table.holders_of(row).tolist()
                    if viable_list[holder]
                )
                count = len(candidates) - len(positions)
                if count <= 0:
                    # Out of viable targets; try again on a later round.
                    self._replication.enqueue(block_id)
                    break
                index = self._rng.integer(0, count)
                for position in positions:
                    if position <= index:
                        index += 1
                target = int(candidates[index])
                self._store_replica_at(row, target, time)
                restored += 1
                missing -= 1
                # The store consumed space on ``target``: refresh its bit in
                # every cached mask, rebuilding only on a flip.
                free = float(
                    self._server_capacity[target] - self._server_used[target]
                )
                for cached_size in list(cache):
                    cached_viable = cache[cached_size][0]
                    still_viable = cached_size <= max(0.0, free) + 1e-9 and not (
                        busy_list is not None and busy_list[target]
                    )
                    if bool(cached_viable[target]) != still_viable:
                        cached_viable[target] = still_viable
                        cache[cached_size] = (
                            cached_viable,
                            order[cached_viable[order]],
                            cached_viable.tolist(),
                            np.cumsum(cached_viable[order]).tolist(),
                        )
        if restored:
            self.metrics.counter("replicas_restored").increment(restored)
        return restored

    # -- statistics -------------------------------------------------------------------

    def lost_block_fraction(self) -> float:
        """Fraction of created blocks that have been lost."""
        if not self._table.num_blocks:
            return 0.0
        return int(self._table.lost.sum()) / self._table.num_blocks

    def total_used_space_gb(self) -> float:
        """Space consumed across all DataNodes."""
        return sum(dn.used_space_gb for dn in self._datanodes.values())
