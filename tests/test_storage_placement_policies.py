"""Tests for the stock and history placement policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.grid import TenantPlacementStats
from repro.simulation.random import RandomSource
from repro.storage.datanode import DataNode
from repro.storage.placement_policies import (
    HistoryPlacementPolicy,
    StockPlacementPolicy,
)
from repro.traces.datacenter import PrimaryTenant, Server
from repro.traces.utilization import UtilizationPattern, UtilizationTrace


def build_datanodes(
    num_tenants: int = 9, servers_per_tenant: int = 3, racks: int = 4
) -> tuple[dict[str, DataNode], list[PrimaryTenant]]:
    tenants = []
    datanodes: dict[str, DataNode] = {}
    server_index = 0
    for i in range(num_tenants):
        tenant = PrimaryTenant(
            tenant_id=f"t{i}",
            environment=f"env-{i}",
            machine_function="mf",
            trace=UtilizationTrace(
                np.full(60, 0.1 + 0.08 * (i % 9)), UtilizationPattern.CONSTANT
            ),
            pattern=UtilizationPattern.CONSTANT,
        )
        for j in range(servers_per_tenant):
            server = Server(
                server_id=f"srv-{server_index}",
                tenant_id=tenant.tenant_id,
                rack=f"rack-{server_index % racks}",
                harvestable_disk_gb=8.0,
            )
            tenant.servers.append(server)
            datanodes[server.server_id] = DataNode(server=server, tenant=tenant)
            server_index += 1
        tenants.append(tenant)
    return datanodes, tenants


def placement_stats(tenants: list[PrimaryTenant]) -> list[TenantPlacementStats]:
    return [
        TenantPlacementStats(
            tenant_id=t.tenant_id,
            environment=t.environment,
            reimage_rate=0.05 * (1 + int(t.tenant_id[1:])),
            peak_utilization=t.peak_utilization(),
            available_space_gb=t.harvestable_disk_gb,
            server_ids=[s.server_id for s in t.servers],
            racks_by_server={s.server_id: s.rack for s in t.servers},
        )
        for t in tenants
    ]


class TestStockPolicy:
    def test_places_requested_replicas_on_distinct_servers(self):
        datanodes, tenants = build_datanodes()
        policy = StockPlacementPolicy(RandomSource(1))
        creator = tenants[0].servers[0].server_id
        chosen = policy.choose_servers(3, creator, datanodes, 0.25)
        assert len(chosen) == 3
        assert len(set(chosen)) == 3
        assert chosen[0] == creator

    def test_second_replica_prefers_creator_rack(self):
        datanodes, tenants = build_datanodes()
        policy = StockPlacementPolicy(RandomSource(2))
        creator = tenants[0].servers[0].server_id
        creator_rack = datanodes[creator].server.rack
        same_rack_exists = any(
            dn.server.rack == creator_rack and dn.server_id != creator
            for dn in datanodes.values()
        )
        if not same_rack_exists:
            pytest.skip("layout has no second server in the creator's rack")
        counts = 0
        trials = 30
        for _ in range(trials):
            chosen = policy.choose_servers(3, creator, datanodes, 0.25)
            if datanodes[chosen[1]].server.rack == creator_rack:
                counts += 1
        assert counts > trials * 0.8

    def test_third_replica_prefers_remote_rack(self):
        datanodes, tenants = build_datanodes()
        policy = StockPlacementPolicy(RandomSource(3))
        creator = tenants[0].servers[0].server_id
        chosen = policy.choose_servers(3, creator, datanodes, 0.25)
        racks = [datanodes[s].server.rack for s in chosen]
        assert len(set(racks)) >= 2

    def test_excluded_servers_skipped(self):
        datanodes, tenants = build_datanodes()
        policy = StockPlacementPolicy(RandomSource(4))
        excluded = list(datanodes)[:13]
        chosen = policy.choose_servers(3, None, datanodes, 0.25, exclude=excluded)
        assert not set(chosen) & set(excluded)

    def test_no_candidates_returns_empty(self):
        datanodes, _ = build_datanodes(num_tenants=1, servers_per_tenant=1)
        policy = StockPlacementPolicy(RandomSource(5))
        chosen = policy.choose_servers(
            3, None, datanodes, 0.25, exclude=list(datanodes)
        )
        assert chosen == []

    def test_replication_validated(self):
        datanodes, _ = build_datanodes()
        with pytest.raises(ValueError):
            StockPlacementPolicy().choose_servers(0, None, datanodes, 0.25)


class TestHistoryPolicy:
    def test_requires_clustering_before_placement(self):
        datanodes, _ = build_datanodes()
        policy = HistoryPlacementPolicy(rng=RandomSource(1))
        with pytest.raises(RuntimeError):
            policy.choose_servers(3, None, datanodes, 0.25)

    def test_places_three_replicas_in_distinct_environments(self):
        datanodes, tenants = build_datanodes()
        policy = HistoryPlacementPolicy(rng=RandomSource(1))
        policy.update_clustering(placement_stats(tenants))
        chosen = policy.choose_servers(3, None, datanodes, 0.25)
        assert len(chosen) == 3
        environments = {datanodes[s].tenant.environment for s in chosen}
        assert len(environments) == 3

    def test_busy_exclusions_respected(self):
        datanodes, tenants = build_datanodes()
        policy = HistoryPlacementPolicy(rng=RandomSource(1))
        policy.update_clustering(placement_stats(tenants))
        excluded = [s.server_id for s in tenants[0].servers]
        for _ in range(10):
            chosen = policy.choose_servers(3, None, datanodes, 0.25, exclude=excluded)
            assert not set(chosen) & set(excluded)

    def test_grid_accessible_after_update(self):
        _, tenants = build_datanodes()
        policy = HistoryPlacementPolicy(rng=RandomSource(1))
        assert policy.grid is None
        policy.update_clustering(placement_stats(tenants))
        assert policy.grid is not None
        assert policy.grid.rows == 3

    def test_reclustering_preserves_space_accounting(self):
        datanodes, tenants = build_datanodes()
        policy = HistoryPlacementPolicy(rng=RandomSource(1))
        stats = placement_stats(tenants)
        policy.update_clustering(stats)
        chosen = policy.choose_servers(3, None, datanodes, 0.25)
        assert chosen
        used_before = {
            t.tenant_id: policy._placer.space_used_gb(t.tenant_id) for t in tenants
        }
        policy.update_clustering(stats)
        used_after = {
            t.tenant_id: policy._placer.space_used_gb(t.tenant_id) for t in tenants
        }
        assert used_before == used_after

    def test_release_space_after_loss(self):
        datanodes, tenants = build_datanodes()
        policy = HistoryPlacementPolicy(rng=RandomSource(1))
        policy.update_clustering(placement_stats(tenants))
        chosen = policy.choose_servers(3, None, datanodes, 0.25)
        tenant_id = datanodes[chosen[0]].tenant_id
        before = policy._placer.space_used_gb(tenant_id)
        policy.release_space(tenant_id, 0.25)
        assert policy._placer.space_used_gb(tenant_id) == pytest.approx(
            max(0.0, before - 0.25)
        )
