"""Experiment scales (re-exported).

The scale knobs moved to :mod:`repro.harness.config` when the drivers were
unified on the scenario harness — the harness layer owns them now, and the
driver layer sits above it.  This module remains as the historical import
path.
"""

from repro.harness.config import (
    BENCH_SCALE,
    ExperimentScale,
    QUICK_SCALE,
    TESTBED_SCALE,
    TINY_SCALE,
)

__all__ = [
    "BENCH_SCALE",
    "ExperimentScale",
    "QUICK_SCALE",
    "TESTBED_SCALE",
    "TINY_SCALE",
]
