"""Tests for the Node Manager heartbeat and reserve enforcement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.node_manager import NodeManager
from repro.cluster.resources import Resource
from repro.cluster.server import ContainerState, SimulatedServer
from repro.traces.datacenter import PrimaryTenant, Server
from repro.traces.utilization import UtilizationPattern, UtilizationTrace


def make_server(utilization: float = 0.25) -> SimulatedServer:
    tenant = PrimaryTenant(
        tenant_id="t",
        environment="env",
        machine_function="mf",
        trace=UtilizationTrace(np.full(100, utilization), UtilizationPattern.CONSTANT),
        pattern=UtilizationPattern.CONSTANT,
    )
    server = Server("s0", "t", cores=12, memory_gb=32.0)
    tenant.servers.append(server)
    return SimulatedServer(server, tenant)


class TestPrimaryAwareHeartbeat:
    def test_heartbeat_reports_rounded_primary_plus_allocations(self):
        server = make_server(utilization=0.21)  # 2.52 cores -> rounds to 3
        server.launch_container("task", "job", Resource(2.0, 4.0), 0.0)
        heartbeat = NodeManager(server, primary_aware=True).heartbeat(0.0)
        assert heartbeat.used.cores == pytest.approx(3.0 + 2.0)
        assert heartbeat.primary_utilization == pytest.approx(0.21)
        # Available = 12 - 3 (primary) - 4 (reserve) - 2 (allocated) = 3.
        assert heartbeat.available.cores == pytest.approx(3.0)

    def test_heartbeat_kills_on_primary_spike(self):
        server = make_server(utilization=0.25)
        container = server.launch_container("task", "job", Resource(5.0, 8.0), 0.0)
        server.set_utilization_override(lambda t: 0.6)
        heartbeat = NodeManager(server, primary_aware=True).heartbeat(10.0)
        assert container in heartbeat.killed_containers
        assert container.state is ContainerState.KILLED

    def test_kill_callback_invoked(self):
        killed = []
        server = make_server(utilization=0.25)
        node_manager = NodeManager(server, primary_aware=True, on_kill=killed.append)
        server.launch_container("task", "job", Resource(5.0, 8.0), 0.0)
        server.set_utilization_override(lambda t: 0.6)
        node_manager.heartbeat(10.0)
        assert len(killed) == 1

    def test_available_never_negative(self):
        server = make_server(utilization=0.95)
        heartbeat = NodeManager(server, primary_aware=True).heartbeat(0.0)
        assert heartbeat.available.cores >= 0.0
        assert heartbeat.available.memory_gb >= 0.0


class TestStockHeartbeat:
    def test_stock_ignores_primary(self):
        server = make_server(utilization=0.5)
        server.launch_container("task", "job", Resource(2.0, 4.0), 0.0)
        heartbeat = NodeManager(server, primary_aware=False).heartbeat(0.0)
        assert heartbeat.used.cores == pytest.approx(2.0)
        assert heartbeat.available.cores == pytest.approx(10.0)
        assert heartbeat.primary_utilization == 0.0

    def test_stock_never_kills(self):
        server = make_server(utilization=0.25)
        server.launch_container("task", "job", Resource(8.0, 16.0), 0.0)
        server.set_utilization_override(lambda t: 0.9)
        node_manager = NodeManager(server, primary_aware=False)
        assert node_manager.enforce_reserve(10.0) == []
        heartbeat = node_manager.heartbeat(10.0)
        assert heartbeat.killed_containers == []
