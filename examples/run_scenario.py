#!/usr/bin/env python3
"""Define, register, and run a custom scenario on the experiment harness.

The built-in figures are registered `ScenarioSpec`s (see
``repro run-scenario --list``).  This example shows the same machinery from
user code:

1. derive a faster variant of the Figure 16 availability scenario (fewer
   tenants, fewer sampled accesses, a custom utilization sweep);
2. register it, so it is runnable by name like any built-in figure;
3. run it through ``repro.api`` serially and on a 2-worker process pool and
   check the ``RunResult`` fingerprints agree — the parallel executor is
   bit-identical to the serial run by construction;
4. build a small cross-product family with ``api.sweep`` and run it.

Run with::

    python examples/run_scenario.py
"""

from __future__ import annotations

import repro.api as api
from repro.experiments.config import QUICK_SCALE
from repro.experiments.report import format_table
from repro.harness import get_scenario, register_scenario, run_scenario


def main() -> None:
    # 1. Derive a custom scenario from a registered one.
    custom = get_scenario("fig16-availability").with_overrides(
        name="availability-fast",
        description="Figure 16 at reduced fidelity (demo)",
        utilization_levels=(0.35, 0.55, 0.7),
        replication_levels=(3,),
        max_tenants=20,
        servers_per_tenant_limit=3,
        scale=QUICK_SCALE,
        params={"accesses_per_point": 500},
    )
    register_scenario(custom)
    print(f"Registered scenario {custom.name!r} (kind={custom.kind})")

    # 2. Run it by name, exactly as `repro run-scenario availability-fast`.
    result = run_scenario("availability-fast", seed=1)
    rows = [
        [
            f"{level:.2f}",
            f"{100 * result.failed_fraction('HDFS-Stock', 3, level):.2f}%",
            f"{100 * result.failed_fraction('HDFS-H', 3, level):.2f}%",
        ]
        for level in custom.utilization_levels
    ]
    print(format_table(
        ["avg util", "HDFS-Stock R3 failed", "HDFS-H R3 failed"],
        rows,
        title="\nCustom availability sweep",
    ))

    # 3. The programmatic API: the same run as a uniform RunResult
    # envelope, serially and on a 2-worker process pool.  The cell grid
    # makes the parallel run bit-identical, so the fingerprints must agree.
    serial = api.run("availability-fast", seed=1)
    parallel = api.run("availability-fast", seed=1, workers=2)
    identical = serial.fingerprint() == parallel.fingerprint()
    print(f"\nExecutor equivalence (serial vs workers=2): "
          f"{'identical' if identical else 'MISMATCH'}")
    print(f"cells: {serial.cell_seconds()}")

    # 4. A derived cross-product family: no registration, no new code.
    family = api.sweep(
        "availability-fast",
        {"seed": [1, 2]},
        overrides={"utilization_levels": (0.55,), "accesses_per_point": 200},
    )
    for run_result in api.run_sweep(family):
        failed = {
            p.variant: p.failed_accesses for p in run_result.payload.points
        }
        print(f"{run_result.scenario}: failed accesses {failed}")


if __name__ == "__main__":
    main()
