"""Tests for the datacenter / tenant / server models and the fleet presets."""

from __future__ import annotations

import pytest

from repro.simulation.random import RandomSource
from repro.traces.datacenter import Datacenter, PrimaryTenant, Server
from repro.traces.fleet import (
    DatacenterSpec,
    build_datacenter,
    build_fleet,
    fleet_specs,
)
from repro.traces.utilization import UtilizationPattern


class TestServer:
    def test_invalid_resources_rejected(self):
        with pytest.raises(ValueError):
            Server("s", "t", cores=0)
        with pytest.raises(ValueError):
            Server("s", "t", memory_gb=0)

    def test_harvestable_cannot_exceed_total_disk(self):
        with pytest.raises(ValueError):
            Server("s", "t", disk_gb=100.0, harvestable_disk_gb=200.0)


class TestPrimaryTenant:
    def test_statistics_require_trace(self):
        tenant = PrimaryTenant("t", "env", "mf")
        with pytest.raises(ValueError):
            tenant.mean_utilization()
        with pytest.raises(ValueError):
            tenant.utilization_at(0.0)

    def test_harvestable_disk_sums_servers(self, small_tenants):
        tenant = small_tenants[0]
        expected = sum(s.harvestable_disk_gb for s in tenant.servers)
        assert tenant.harvestable_disk_gb == pytest.approx(expected)

    def test_peak_at_least_mean(self, small_tenants):
        for tenant in small_tenants:
            assert tenant.peak_utilization() >= tenant.mean_utilization() - 1e-9


class TestDatacenter:
    def test_duplicate_tenant_rejected(self, small_tenants):
        datacenter = Datacenter("DC-test")
        datacenter.add_tenant(small_tenants[0])
        with pytest.raises(ValueError):
            datacenter.add_tenant(small_tenants[0])

    def test_counts(self, small_datacenter):
        assert small_datacenter.num_tenants == 6
        assert small_datacenter.num_servers == 6 * 4
        assert len(small_datacenter.servers) == small_datacenter.num_servers

    def test_tenant_of_server(self, small_datacenter):
        server = small_datacenter.servers[0]
        tenant = small_datacenter.tenant_of_server(server.server_id)
        assert server.tenant_id == tenant.tenant_id
        with pytest.raises(KeyError):
            small_datacenter.tenant_of_server("nonexistent")

    def test_environments_derived_from_tenants(self, small_datacenter):
        envs = small_datacenter.environments
        assert len(envs) == 6
        for env in envs.values():
            assert len(env.tenant_ids) == 1

    def test_server_fraction_by_pattern_sums_to_one(self, small_datacenter):
        fractions = small_datacenter.server_fraction_by_pattern()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_mean_utilization_weighted_by_servers(self, small_datacenter):
        mean = small_datacenter.mean_utilization()
        assert 0.0 < mean < 1.0

    def test_utilization_matrix_shape(self, small_datacenter):
        matrix = small_datacenter.utilization_matrix()
        assert matrix.shape[0] == small_datacenter.num_tenants


class TestFleet:
    def test_ten_datacenter_specs(self):
        specs = fleet_specs()
        assert len(specs) == 10
        assert [s.name for s in specs] == [f"DC-{i}" for i in range(10)]

    def test_spec_mix_must_sum_to_one(self):
        with pytest.raises(ValueError):
            DatacenterSpec(
                name="bad",
                tenant_class_mix={
                    UtilizationPattern.PERIODIC: 0.5,
                    UtilizationPattern.CONSTANT: 0.2,
                    UtilizationPattern.UNPREDICTABLE: 0.1,
                },
            )

    def test_build_datacenter_has_all_patterns(self, rng):
        spec = fleet_specs()[9]
        datacenter = build_datacenter(spec, rng, scale=0.05)
        by_pattern = datacenter.tenants_by_pattern()
        for pattern in UtilizationPattern:
            assert by_pattern[pattern], f"no tenants with pattern {pattern}"

    def test_build_datacenter_is_deterministic(self):
        spec = fleet_specs()[0]
        a = build_datacenter(spec, RandomSource(3), scale=0.05)
        b = build_datacenter(spec, RandomSource(3), scale=0.05)
        assert sorted(a.tenants) == sorted(b.tenants)
        assert a.num_servers == b.num_servers

    def test_scale_changes_size(self, rng):
        spec = fleet_specs()[0]
        small = build_datacenter(spec, rng, scale=0.05)
        large = build_datacenter(spec, rng, scale=0.1)
        assert large.num_tenants > small.num_tenants

    def test_periodic_minority_of_tenants_majority_weighted_servers(self, rng):
        """Figures 2 and 3: periodic tenants are few but own many servers."""
        spec = fleet_specs()[9]
        datacenter = build_datacenter(spec, rng, scale=0.2)
        by_pattern = datacenter.tenants_by_pattern()
        periodic_tenants = len(by_pattern[UtilizationPattern.PERIODIC])
        constant_tenants = len(by_pattern[UtilizationPattern.CONSTANT])
        assert periodic_tenants < constant_tenants
        server_fraction = datacenter.server_fraction_by_pattern()
        assert server_fraction[UtilizationPattern.PERIODIC] > 0.25

    def test_build_fleet_returns_all_names(self, rng):
        fleet = build_fleet(rng, scale=0.02)
        assert set(fleet) == {f"DC-{i}" for i in range(10)}

    def test_invalid_scale_rejected(self, rng):
        with pytest.raises(ValueError):
            build_datacenter(fleet_specs()[0], rng, scale=0.0)
